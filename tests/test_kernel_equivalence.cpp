#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "experiment/json.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;

/// Full-scenario differential between the timer-wheel and binary-heap event
/// kernels: identical configs must produce byte-identical result JSON
/// (perf excluded — it is wall-clock). This is the in-tree version of
/// bench/scaling_grid --differential, small enough for the unit suite.
///
/// The kernel is selected per process via GEOANON_HEAP_QUEUE, so the test
/// saves, toggles, and restores the variable around each serial run. The
/// simulator reads it once at construction; runs never overlap.
class KernelEquivalence : public ::testing::Test {
  protected:
    static std::string run_with_kernel(bool heap, workload::ScenarioConfig cfg) {
        const char* prev = std::getenv("GEOANON_HEAP_QUEUE");
        const std::string saved = prev != nullptr ? prev : "";
        const bool had = prev != nullptr;
        if (heap) {
            ::setenv("GEOANON_HEAP_QUEUE", "1", 1);
        } else {
            ::unsetenv("GEOANON_HEAP_QUEUE");
        }
        workload::ScenarioRunner runner(cfg);
        const workload::ScenarioResult result = runner.run();
        if (had) {
            ::setenv("GEOANON_HEAP_QUEUE", saved.c_str(), 1);
        } else {
            ::unsetenv("GEOANON_HEAP_QUEUE");
        }
        return experiment::result_to_json(result, /*include_perf=*/false);
    }

    static workload::ScenarioConfig small_config(workload::Scheme scheme) {
        workload::ScenarioConfig cfg;
        cfg.scheme = scheme;
        cfg.seed = 42;
        cfg.num_nodes = 25;
        cfg.num_flows = 6;
        cfg.num_senders = 5;
        cfg.sim_seconds = 40.0;
        cfg.traffic_stop_s = 35.0;
        return cfg;
    }
};

TEST_F(KernelEquivalence, GpsrResultJsonByteIdentical) {
    const auto cfg = small_config(workload::Scheme::kGpsrGreedy);
    EXPECT_EQ(run_with_kernel(false, cfg), run_with_kernel(true, cfg));
}

TEST_F(KernelEquivalence, AgfwAckResultJsonByteIdentical) {
    const auto cfg = small_config(workload::Scheme::kAgfwAck);
    EXPECT_EQ(run_with_kernel(false, cfg), run_with_kernel(true, cfg));
}

}  // namespace
