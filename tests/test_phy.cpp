#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using phy::Channel;
using phy::Frame;
using phy::PhyParams;
using phy::Radio;
using util::SimTime;
using util::Vec2;

/// Test rig: a channel plus stationary radios with received-frame capture.
struct Rig {
    explicit Rig(PhyParams params = {}) : channel(sim, params) {}

    Radio& add(Vec2 pos) {
        radios.push_back(std::make_unique<Radio>(sim, channel, [pos] { return pos; }));
        received.emplace_back();
        auto idx = received.size() - 1;
        radios.back()->set_mac_hooks(
            nullptr, nullptr, [this, idx](const Frame& f) { received[idx].push_back(f); });
        return *radios.back();
    }

    Frame frame(std::uint32_t bytes = 100) {
        Frame f;
        f.type = Frame::Type::kData;
        f.wire_bytes = bytes;
        return f;
    }

    sim::Simulator sim;
    Channel channel;
    std::vector<std::unique_ptr<Radio>> radios;
    std::vector<std::vector<Frame>> received;
};

TEST(PhyParams, AirtimeFormula) {
    PhyParams p;
    // 100 bytes at 2 Mb/s = 400 us + 192 us PLCP.
    EXPECT_EQ(p.airtime(100), SimTime::micros(592));
    EXPECT_EQ(p.airtime(0), SimTime::micros(192));
}

TEST(Phy, DeliversWithinRange) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    rig.add({200, 0});  // inside 250 m
    tx.start_tx(rig.frame());
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);
    EXPECT_EQ(rig.received[1][0].wire_bytes, 100u);
    EXPECT_EQ(rig.channel.stats().deliveries, 1u);
}

TEST(Phy, NoDeliveryBeyondRange) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    rig.add({251, 0});  // just outside decode range
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_TRUE(rig.received[1].empty());
}

TEST(Phy, SenderDoesNotHearItself) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_TRUE(rig.received[0].empty());
}

TEST(Phy, DeliveryAtExactFrameEnd) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    rig.add({100, 0});
    tx.start_tx(rig.frame(100));
    rig.sim.run_until(SimTime::micros(591));
    EXPECT_TRUE(rig.received[1].empty());  // still on the air
    rig.sim.run_until(SimTime::micros(592));
    EXPECT_EQ(rig.received[1].size(), 1u);
}

TEST(Phy, OverlappingTransmissionsCollideAtReceiver) {
    Rig rig;
    Radio& a = rig.add({0, 0});
    Radio& b = rig.add({100, 100});
    rig.add({100, 0});  // hears both
    rig.sim.at(SimTime::zero(), [&] { a.start_tx(rig.frame()); });
    rig.sim.at(SimTime::micros(100), [&] { b.start_tx(rig.frame()); });
    rig.sim.run();
    EXPECT_TRUE(rig.received[2].empty());
    EXPECT_GE(rig.channel.stats().collisions, 1u);
}

TEST(Phy, HiddenTerminalCollision) {
    // Two senders out of carrier-sense range of each other, one receiver
    // that decodes both: the classic hidden-terminal loss AGFW's broadcasts
    // suffer from (§5). CS range is shrunk so the textbook geometry fits.
    PhyParams p;
    p.range_m = 250;
    p.cs_range_m = 300;
    Rig rig(p);
    Radio& s1 = rig.add({0, 0});
    Radio& s2 = rig.add({400, 0});  // 400 > 300: hidden from s1
    rig.add({200, 0});              // within 250 m of both
    rig.sim.at(SimTime::zero(), [&] { s1.start_tx(rig.frame()); });
    rig.sim.at(SimTime::micros(50), [&] {
        EXPECT_FALSE(s2.energy_busy());  // s2 cannot sense s1: hidden terminal
        s2.start_tx(rig.frame());
    });
    rig.sim.run();
    EXPECT_TRUE(rig.received[2].empty());  // both frames corrupted at m
    EXPECT_GE(rig.channel.stats().collisions, 1u);
}

TEST(Phy, InterferenceFromBeyondCsOfSender) {
    // With the ns-2 default geometry (250 m decode / 550 m CS), a node more
    // than 550 m from the sender cannot defer to it, yet still corrupts a
    // receiver sitting within 250 m of the sender — the collision mode that
    // actually drives AGFW's broadcast losses on the 1500x300 strip.
    Rig rig;
    Radio& sender = rig.add({0, 0});
    Radio& interferer = rig.add({640, 0});  // > 550 from sender
    rig.add({240, 0});                      // decodes sender; 400 m from interferer
    rig.sim.at(SimTime::zero(), [&] { sender.start_tx(rig.frame()); });
    rig.sim.at(SimTime::micros(80), [&] {
        EXPECT_FALSE(interferer.energy_busy());
        interferer.start_tx(rig.frame());
    });
    rig.sim.run();
    EXPECT_TRUE(rig.received[2].empty());
}

TEST(Phy, InterferenceRangeCorruptsWithoutDelivering) {
    // A transmitter between decode range and CS range corrupts reception but
    // its own frame is not decodable there.
    Rig rig;
    Radio& near = rig.add({0, 0});
    Radio& far = rig.add({400, 0});  // 400: beyond 250, inside 550 of rx
    rig.add({100, 0});
    rig.sim.at(SimTime::zero(), [&] { near.start_tx(rig.frame()); });
    rig.sim.at(SimTime::micros(100), [&] { far.start_tx(rig.frame()); });
    rig.sim.run();
    EXPECT_TRUE(rig.received[2].empty());
}

TEST(Phy, CarrierSenseWithinCsRange) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    Radio& sensing = rig.add({500, 0});    // inside 550 CS range
    Radio& oblivious = rig.add({600, 0});  // outside
    rig.sim.at(SimTime::zero(), [&] { tx.start_tx(rig.frame()); });
    rig.sim.at(SimTime::micros(50), [&] {
        EXPECT_TRUE(sensing.energy_busy());
        EXPECT_FALSE(oblivious.energy_busy());
        EXPECT_TRUE(tx.energy_busy());  // own transmission counts
    });
    rig.sim.run();
    rig.sim.at(rig.sim.now(), [&] {});
    EXPECT_FALSE(sensing.energy_busy());  // idle after frame end
}

TEST(Phy, BusyIdleCallbacks) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    Radio& rx = rig.add({100, 0});
    int busy = 0, idle = 0;
    rx.set_mac_hooks([&] { ++busy; }, [&] { ++idle; }, nullptr);
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(busy, 1);
    EXPECT_EQ(idle, 1);
}

TEST(Phy, TransmittingWhileReceivingCorrupts) {
    Rig rig;
    Radio& a = rig.add({0, 0});
    Radio& b = rig.add({100, 0});
    rig.sim.at(SimTime::zero(), [&] { a.start_tx(rig.frame()); });
    // b starts its own transmission mid-reception: half-duplex corruption.
    rig.sim.at(SimTime::micros(100), [&] { b.start_tx(rig.frame(10)); });
    rig.sim.run();
    EXPECT_TRUE(rig.received[1].empty());
    // a still cannot hear b (a was transmitting at b's start too).
    EXPECT_TRUE(rig.received[0].empty());
}

TEST(Phy, BackToBackFramesBothDeliver) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    rig.add({100, 0});
    const SimTime air = rig.channel.params().airtime(100);
    rig.sim.at(SimTime::zero(), [&] { tx.start_tx(rig.frame()); });
    rig.sim.at(air + 1_us, [&] { tx.start_tx(rig.frame()); });
    rig.sim.run();
    EXPECT_EQ(rig.received[1].size(), 2u);
}

TEST(Phy, SnoopSeesEveryTransmission) {
    Rig rig;
    int snooped = 0;
    rig.channel.set_snoop([&](const Frame&, const Vec2& pos) {
        ++snooped;
        EXPECT_EQ(pos, (Vec2{0, 0}));
    });
    Radio& tx = rig.add({0, 0});
    rig.add({1000, 0});  // no receivers in range: snoop still fires
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(snooped, 1);
}

TEST(Phy, SnoopAndTapsShareOneDispatchList) {
    // set_snoop owns the primary slot (replaced, not appended); add_snoop
    // appends independent taps. All observers see every transmission.
    Rig rig;
    int replaced = 0, primary = 0, extra = 0;
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { ++replaced; });
    rig.channel.add_snoop([&](const Frame&, const Vec2&) { ++extra; });
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { ++primary; });
    Radio& tx = rig.add({0, 0});
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(replaced, 0);  // displaced by the second set_snoop
    EXPECT_EQ(primary, 1);
    EXPECT_EQ(extra, 1);
    rig.channel.set_snoop(nullptr);  // clears only the primary slot
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(primary, 1);
    EXPECT_EQ(extra, 2);
}

TEST(Phy, PrimarySnoopAlwaysDispatchedFirst) {
    // Contract (channel.hpp): the set_snoop() tap occupies slot 0 and fires
    // before every add_snoop() tap, even when it is registered last — trace
    // event order depends on this.
    Rig rig;
    std::vector<int> order;
    rig.channel.add_snoop([&](const Frame&, const Vec2&) { order.push_back(1); });
    rig.channel.add_snoop([&](const Frame&, const Vec2&) { order.push_back(2); });
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { order.push_back(0); });
    Radio& tx = rig.add({0, 0});
    tx.start_tx(rig.frame());
    rig.sim.run_until(1_s);  // finite horizon: the rig transmits again below
    ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));

    // Replacing the primary keeps slot 0; add_snoop order is preserved.
    order.clear();
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { order.push_back(-1); });
    tx.start_tx(rig.frame());
    rig.sim.run_until(2_s);
    ASSERT_EQ(order, (std::vector<int>{-1, 1, 2}));
}

TEST(Phy, ClearSnoopsDropsEveryTap) {
    Rig rig;
    int primary = 0, extra = 0;
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { ++primary; });
    rig.channel.add_snoop([&](const Frame&, const Vec2&) { ++extra; });
    rig.channel.clear_snoops();
    Radio& tx = rig.add({0, 0});
    tx.start_tx(rig.frame());
    rig.sim.run_until(1_s);  // finite horizon: the rig transmits again below
    EXPECT_EQ(primary, 0);
    EXPECT_EQ(extra, 0);

    // The channel is reusable after clearing: set_snoop reclaims slot 0.
    rig.channel.set_snoop([&](const Frame&, const Vec2&) { ++primary; });
    tx.start_tx(rig.frame());
    rig.sim.run_until(2_s);
    EXPECT_EQ(primary, 1);
}

TEST(Phy, StatsCountersConsistent) {
    Rig rig;
    Radio& tx = rig.add({0, 0});
    rig.add({100, 0});
    rig.add({200, 0});
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(rig.channel.stats().transmissions, 1u);
    EXPECT_EQ(rig.channel.stats().deliveries, 2u);
    EXPECT_EQ(tx.stats().frames_sent, 1u);
    EXPECT_EQ(rig.radios[1]->stats().frames_delivered, 1u);
}

}  // namespace
