#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using workload::Scheme;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::ScenarioRunner;

ScenarioResult run(Scheme scheme, bool anonymous_mac = true, std::uint64_t seed = 3) {
    ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 40;
    cfg.sim_seconds = 60.0;
    cfg.traffic_stop_s = 55.0;
    cfg.seed = seed;
    cfg.anonymous_mac = anonymous_mac;
    cfg.attach_eavesdropper = true;
    ScenarioRunner runner(cfg);
    return runner.run();
}

TEST(Adversary, GpsrExposesEveryone) {
    const auto r = run(Scheme::kGpsrGreedy);
    // Every node beacons its identity+location every 1.5 s: the passive
    // sniffer localizes all of them, nearly continuously (§2's threat).
    EXPECT_EQ(r.adversary.nodes_ever_localized, 40u);
    EXPECT_GT(r.adversary.identity_sightings, 1000u);
    EXPECT_GT(r.adversary.mean_tracking_coverage, 0.9);
}

TEST(Adversary, AgfwExposesNothing) {
    const auto r = run(Scheme::kAgfwAck);
    // §4: "no node exposes its identity and location simultaneously".
    EXPECT_EQ(r.adversary.identity_sightings, 0u);
    EXPECT_EQ(r.adversary.nodes_ever_localized, 0u);
    EXPECT_EQ(r.adversary.mac_pseudonym_links, 0u);
    EXPECT_EQ(r.adversary.mean_tracking_coverage, 0.0);
    // The sniffer still sees plenty of (unlinkable) pseudonymous traffic.
    EXPECT_GT(r.adversary.pseudonym_sightings, 1000u);
}

TEST(Adversary, AgfwNoAckAlsoExposesNothing) {
    const auto r = run(Scheme::kAgfwNoAck);
    EXPECT_EQ(r.adversary.identity_sightings, 0u);
    EXPECT_EQ(r.adversary.nodes_ever_localized, 0u);
}

TEST(Adversary, MacAddressLeakEnablesCorrelationAttack) {
    // §3.2's warning: if AGFW frames carried real MAC source addresses, the
    // eavesdropper correlates consecutive hops of one packet (same trapdoor
    // == same uid) and binds pseudonyms to the persistent MAC, after which
    // hellos localize the victim.
    const auto r = run(Scheme::kAgfwAck, /*anonymous_mac=*/false);
    EXPECT_GT(r.adversary.mac_pseudonym_links, 0u);
    EXPECT_GT(r.adversary.identity_sightings, 0u);
    EXPECT_GT(r.adversary.nodes_ever_localized, 0u);
}

TEST(Adversary, AnonymousMacClosesTheLeak) {
    const auto with_leak = run(Scheme::kAgfwAck, false, 5);
    const auto sealed = run(Scheme::kAgfwAck, true, 5);
    EXPECT_GT(with_leak.adversary.identity_sightings, sealed.adversary.identity_sightings);
    EXPECT_EQ(sealed.adversary.mac_pseudonym_links, 0u);
}

TEST(Adversary, IndexedAlsLeaksQueryRelationships) {
    // §3.3: "the index part E_{K_B}(A,B) is a fixed block of data, a
    // sophisticated attacker may find a matching identity with a certain
    // probability by collecting enough certificates or computing it
    // exhaustively." A dictionary attacker matches observed LREQ indices and
    // learns who queries whom — though never anyone's location.
    ScenarioConfig cfg;
    cfg.scheme = Scheme::kAgfwAck;
    cfg.num_nodes = 40;
    cfg.sim_seconds = 90.0;
    cfg.traffic_start_s = 20.0;
    cfg.traffic_stop_s = 80.0;
    cfg.seed = 3;
    cfg.attach_eavesdropper = true;
    cfg.location_service = routing::LocationService::Mode::kAnonymous;
    const auto indexed = ScenarioRunner(cfg).run();
    EXPECT_GT(indexed.adversary.index_linkages, 0u);
    EXPECT_GT(indexed.adversary.relationship_pairs_learned, 0u);
    // Still zero identity-LOCATION linkage: the leak is relational only.
    EXPECT_EQ(indexed.adversary.identity_sightings, 0u);

    // The index-free alternative closes exactly this channel (at its higher
    // communication/computation cost, see bench/als_overhead).
    cfg.location_service = routing::LocationService::Mode::kAnonymousIndexFree;
    const auto index_free = ScenarioRunner(cfg).run();
    EXPECT_EQ(index_free.adversary.index_linkages, 0u);
}

TEST(Adversary, FramesObservedCountsEverything) {
    const auto r = run(Scheme::kGpsrGreedy);
    EXPECT_GT(r.adversary.frames_observed, r.adversary.identity_sightings / 2);
    EXPECT_GE(r.adversary.frames_observed, r.transmissions / 2);
}

}  // namespace
