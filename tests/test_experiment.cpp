// SweepSpec expansion, SweepRunner parallel determinism, and the ordered
// JSON emitter that backs the byte-identity contract.

#include <gtest/gtest.h>

#include "experiment/json.hpp"
#include "experiment/sweep.hpp"

namespace {

using namespace geoanon;
using experiment::Axis;
using experiment::JsonWriter;
using experiment::PointRecord;
using experiment::SweepRunner;
using experiment::SweepSpec;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::Scheme;

SweepSpec small_spec() {
    SweepSpec spec;
    spec.base.scheme = Scheme::kAgfwAck;
    spec.base.num_nodes = 20;
    spec.base.sim_seconds = 20.0;
    spec.base.traffic_stop_s = 18.0;
    spec.axes = {Axis::nodes({20, 30}),
                 Axis::schemes({Scheme::kGpsrGreedy, Scheme::kAgfwAck})};
    spec.seeds_per_point = 2;
    spec.seed_base = 100;
    return spec;
}

TEST(SweepSpec, ExpansionOrderRowMajorFirstAxisSlowest) {
    const SweepSpec spec = small_spec();
    EXPECT_EQ(spec.num_points(), 4u);
    EXPECT_EQ(spec.num_runs(), 8u);
    // Points: (20,gpsr), (20,agfw), (30,gpsr), (30,agfw).
    EXPECT_EQ(spec.point_coords(0), (std::vector<std::size_t>{0, 0}));
    EXPECT_EQ(spec.point_coords(1), (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(spec.point_coords(2), (std::vector<std::size_t>{1, 0}));
    EXPECT_EQ(spec.point_coords(3), (std::vector<std::size_t>{1, 1}));
}

TEST(SweepSpec, ConfigForAppliesAxesAndSeeds) {
    const SweepSpec spec = small_spec();
    const ScenarioConfig c = spec.config_for(2, 1);
    EXPECT_EQ(c.num_nodes, 30u);
    EXPECT_EQ(c.scheme, Scheme::kGpsrGreedy);
    EXPECT_EQ(c.seed, 101u);
    const ScenarioConfig c0 = spec.config_for(1, 0);
    EXPECT_EQ(c0.num_nodes, 20u);
    EXPECT_EQ(c0.scheme, Scheme::kAgfwAck);
    EXPECT_EQ(c0.seed, 100u);
}

TEST(SweepSpec, AxisLabels) {
    const Axis schemes = Axis::schemes({Scheme::kGpsrGreedy, Scheme::kAgfwNoAck});
    EXPECT_EQ(schemes.label(0), "gpsr-greedy");
    EXPECT_EQ(schemes.label(1), "agfw-noack");
    const Axis nodes = Axis::nodes({50, 150});
    EXPECT_EQ(nodes.label(1), "150");
    int applied = 0;
    const Axis var = Axis::variants("case", {"a", "b"},
                                    [&](ScenarioConfig&, double) { ++applied; });
    EXPECT_EQ(var.values, (std::vector<double>{0.0, 1.0}));
    EXPECT_EQ(var.label(1), "b");
}

TEST(SweepRunner, ParallelOutputByteIdenticalToSerial) {
    // The headline determinism contract: merged results are in spec order
    // and every run is self-contained, so the serialized sweep is identical
    // for any worker count.
    SweepSpec spec = small_spec();
    SweepRunner::Options four_jobs;
    four_jobs.jobs = 4;
    const auto serial = SweepRunner(spec).run();
    const auto parallel = SweepRunner(spec, four_jobs).run();
    ASSERT_EQ(serial.size(), parallel.size());
    const std::string a = experiment::sweep_to_json("t", spec, serial);
    const std::string b = experiment::sweep_to_json("t", spec, parallel);
    EXPECT_EQ(a, b);
}

TEST(SweepRunner, PointRecordsCarryCoordsLabelsAndSeeds) {
    SweepSpec spec = small_spec();
    const auto points = SweepRunner(spec).run();
    ASSERT_EQ(points.size(), 4u);
    const PointRecord& p2 = points[2];
    EXPECT_EQ(p2.index, 2u);
    EXPECT_EQ(p2.values, (std::vector<double>{30.0, 0.0}));
    EXPECT_EQ(p2.labels, (std::vector<std::string>{"30", "gpsr-greedy"}));
    ASSERT_EQ(p2.runs.size(), 2u);
    EXPECT_EQ(p2.runs[0].seed, 100u);
    EXPECT_EQ(p2.runs[1].seed, 101u);
    EXPECT_GT(p2.mean([](const ScenarioResult& r) { return r.delivery_fraction; }),
              0.0);
}

TEST(SweepRunner, PerfBlockPopulated) {
    SweepSpec spec = small_spec();
    spec.axes = {};
    spec.seeds_per_point = 1;
    const auto points = SweepRunner(spec).run();
    ASSERT_EQ(points.size(), 1u);
    const ScenarioResult& r = points[0].runs[0].result;
    EXPECT_GT(r.perf.wall_seconds, 0.0);
    EXPECT_GT(r.perf.events_per_sec, 0.0);
    EXPECT_GT(r.perf.peak_queue_depth, 0u);
}

TEST(SweepRunner, ProgressCallbackCoversEveryRun) {
    SweepSpec spec = small_spec();
    std::size_t calls = 0, last_done = 0;
    SweepRunner::Options opt;
    opt.jobs = 2;
    opt.on_progress = [&](std::size_t done, std::size_t total) {
        ++calls;
        last_done = done;
        EXPECT_EQ(total, 8u);
    };
    SweepRunner(spec, opt).run();
    EXPECT_EQ(calls, 8u);
    EXPECT_EQ(last_done, 8u);
}

TEST(Json, WriterShapesAndEscaping) {
    JsonWriter w;
    w.begin_object();
    w.key("s").value("a\"b\\c\n");
    w.key("i").value(std::uint64_t{42});
    w.key("d").value(0.5);
    w.key("b").value(true);
    w.key("arr").begin_array().value(std::int64_t{-1}).value("x").end_array();
    w.key("o").begin_object().key("k").value("v").end_object();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":42,\"d\":0.5,\"b\":true,"
              "\"arr\":[-1,\"x\"],\"o\":{\"k\":\"v\"}}");
}

TEST(Json, ResultSerializationIsDeterministic) {
    ScenarioResult r;
    r.app_sent = 10;
    r.delivery_fraction = 0.1;
    r.perf.wall_seconds = 1.25;  // non-deterministic field
    ScenarioResult same = r;
    same.perf.wall_seconds = 9.75;  // must not affect the default view
    EXPECT_EQ(experiment::result_to_json(r), experiment::result_to_json(same));
    EXPECT_NE(experiment::result_to_json(r, /*include_perf=*/true),
              experiment::result_to_json(same, /*include_perf=*/true));
}

}  // namespace
