#include <gtest/gtest.h>

#include "mobility/mobility.hpp"

namespace {

using namespace geoanon::mobility;
using geoanon::util::Rng;
using geoanon::util::SimTime;
using geoanon::util::Vec2;

TEST(Area, ContainsAndCenter) {
    const Area area{1500, 300};
    EXPECT_TRUE(area.contains({0, 0}));
    EXPECT_TRUE(area.contains({1500, 300}));
    EXPECT_FALSE(area.contains({-1, 0}));
    EXPECT_FALSE(area.contains({0, 301}));
    EXPECT_EQ(area.center(), (Vec2{750, 150}));
}

TEST(Area, RandomPointInside) {
    const Area area{100, 50};
    Rng rng(3);
    for (int i = 0; i < 500; ++i) EXPECT_TRUE(area.contains(area.random_point(rng)));
}

TEST(Stationary, NeverMoves) {
    StationaryMobility m({10, 20});
    EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{10, 20}));
    EXPECT_EQ(m.position_at(SimTime::seconds(1000)), (Vec2{10, 20}));
    EXPECT_EQ(m.velocity_at(SimTime::seconds(5)), Vec2{});
}

class RwpTest : public ::testing::Test {
  protected:
    Area area_{1500, 300};
    RandomWaypoint::Params params_{};  // 1..20 m/s, 60 s pause
};

TEST_F(RwpTest, StartsAtGivenPosition) {
    RandomWaypoint m(area_, {100, 100}, params_, Rng(1));
    EXPECT_EQ(m.position_at(SimTime::zero()), (Vec2{100, 100}));
}

TEST_F(RwpTest, StaysInsideArea) {
    RandomWaypoint m(area_, {750, 150}, params_, Rng(2));
    for (int t = 0; t <= 2000; t += 13) {
        const Vec2 p = m.position_at(SimTime::seconds(t));
        EXPECT_TRUE(area_.contains(p)) << "t=" << t << " p=(" << p.x << "," << p.y << ")";
    }
}

TEST_F(RwpTest, SpeedWithinBounds) {
    RandomWaypoint m(area_, {10, 10}, params_, Rng(3));
    const double dt = 0.5;
    for (double t = 0; t < 1000; t += dt) {
        const Vec2 a = m.position_at(SimTime::seconds(t));
        const Vec2 b = m.position_at(SimTime::seconds(t + dt));
        const double speed = geoanon::util::distance(a, b) / dt;
        // Allow boundary effects when a leg ends mid-interval.
        EXPECT_LE(speed, params_.max_speed_mps + 1e-6);
    }
}

TEST_F(RwpTest, PausesAtWaypoints) {
    // With a 60 s pause, there must be windows where the node does not move.
    RandomWaypoint m(area_, {10, 10}, params_, Rng(4));
    int still_samples = 0;
    for (double t = 0; t < 3000; t += 1.0) {
        const Vec2 a = m.position_at(SimTime::seconds(t));
        const Vec2 b = m.position_at(SimTime::seconds(t + 0.5));
        if (geoanon::util::distance(a, b) < 1e-9) ++still_samples;
    }
    EXPECT_GT(still_samples, 50);
}

TEST_F(RwpTest, VelocityConsistentWithMotion) {
    RandomWaypoint m(area_, {10, 10}, params_, Rng(5));
    for (double t = 0.5; t < 500; t += 7.3) {
        const Vec2 v = m.velocity_at(SimTime::seconds(t));
        const double dt = 0.01;
        const Vec2 a = m.position_at(SimTime::seconds(t));
        const Vec2 b = m.position_at(SimTime::seconds(t + dt));
        const Vec2 numeric = (b - a) / dt;
        EXPECT_NEAR(v.x, numeric.x, 0.5);
        EXPECT_NEAR(v.y, numeric.y, 0.5);
    }
}

TEST_F(RwpTest, DeterministicForSeed) {
    RandomWaypoint m1(area_, {5, 5}, params_, Rng(42));
    RandomWaypoint m2(area_, {5, 5}, params_, Rng(42));
    for (double t = 0; t < 500; t += 11) {
        EXPECT_EQ(m1.position_at(SimTime::seconds(t)), m2.position_at(SimTime::seconds(t)));
    }
}

TEST_F(RwpTest, OutOfOrderQueriesConsistent) {
    RandomWaypoint m1(area_, {5, 5}, params_, Rng(43));
    RandomWaypoint m2(area_, {5, 5}, params_, Rng(43));
    // m1 queried forward, m2 queried backward: identical trajectory.
    std::vector<Vec2> fwd;
    for (double t = 0; t <= 300; t += 10) fwd.push_back(m1.position_at(SimTime::seconds(t)));
    std::vector<Vec2> bwd;
    for (double t = 300; t >= 0; t -= 10) bwd.push_back(m2.position_at(SimTime::seconds(t)));
    for (std::size_t i = 0; i < fwd.size(); ++i)
        EXPECT_EQ(fwd[i], bwd[bwd.size() - 1 - i]);
}

TEST_F(RwpTest, CoversTheAreaEventually) {
    RandomWaypoint m(area_, {0, 0}, params_, Rng(44));
    bool left = false, right = false;
    for (double t = 0; t < 20000; t += 5) {
        const Vec2 p = m.position_at(SimTime::seconds(t));
        if (p.x < 300) left = true;
        if (p.x > 1200) right = true;
    }
    EXPECT_TRUE(left);
    EXPECT_TRUE(right);
}

TEST(UniformPlacement, CountAndBounds) {
    const Area area{100, 100};
    Rng rng(9);
    const auto pts = uniform_placement(area, 50, rng);
    EXPECT_EQ(pts.size(), 50u);
    for (const auto& p : pts) EXPECT_TRUE(area.contains(p));
}

}  // namespace
