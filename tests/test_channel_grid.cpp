// Spatial-hash channel vs brute-force scan: the grid is an index, not a
// model change, so every observable outcome must be bit-identical. The
// matrix tests run whole scenarios twice (scheme x fault class) and compare
// the full serialized ScenarioResult; the rig tests pin down the geometric
// edge cases the 9-cell query must survive.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "experiment/json.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using phy::Channel;
using phy::Frame;
using phy::PhyParams;
using phy::Radio;
using util::SimTime;
using util::Vec2;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::ScenarioRunner;
using workload::Scheme;

// ---------------------------------------------------------------------------
// Scenario equivalence matrix

ScenarioConfig matrix_config(Scheme scheme, std::uint64_t seed = 5) {
    ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 25;
    cfg.sim_seconds = 40.0;
    cfg.traffic_stop_s = 35.0;
    cfg.seed = seed;
    return cfg;
}

/// Run `cfg` with the grid and with the brute-force scan; the serialized
/// results (every deterministic field) must match byte for byte.
void expect_equivalent(ScenarioConfig cfg) {
    cfg.phy.brute_force = false;
    const ScenarioResult grid = ScenarioRunner(cfg).run();
    cfg.phy.brute_force = true;
    const ScenarioResult brute = ScenarioRunner(cfg).run();
    EXPECT_EQ(grid.events_processed, brute.events_processed);
    EXPECT_EQ(experiment::result_to_json(grid), experiment::result_to_json(brute));
}

TEST(ChannelGridEquivalence, GpsrGreedy) { expect_equivalent(matrix_config(Scheme::kGpsrGreedy)); }

TEST(ChannelGridEquivalence, AgfwAck) { expect_equivalent(matrix_config(Scheme::kAgfwAck)); }

TEST(ChannelGridEquivalence, AgfwNoAck) { expect_equivalent(matrix_config(Scheme::kAgfwNoAck)); }

TEST(ChannelGridEquivalence, UnderChurn) {
    ScenarioConfig cfg = matrix_config(Scheme::kAgfwAck, 7);
    fault::FaultPlan::Churn churn;
    churn.crash_rate_per_s = 0.5;
    churn.start = SimTime::seconds(5.0);
    churn.max_concurrent_down = 5;
    cfg.faults.churn = churn;
    cfg.faults.seed = 21;
    expect_equivalent(cfg);
}

TEST(ChannelGridEquivalence, UnderBurstLossAndJam) {
    // Stateful drop models (the Gilbert-Elliott chain advances per decode
    // decision) are the sharpest equivalence probe: a single reordered or
    // extra candidate visit desynchronizes the RNG chain for the whole run.
    ScenarioConfig cfg = matrix_config(Scheme::kAgfwAck, 9);
    fault::FaultPlan::GilbertElliott ge;
    ge.start = SimTime::seconds(5.0);
    cfg.faults.gilbert_elliott = ge;
    fault::FaultPlan::Jam jam;
    jam.center = {750.0, 150.0};
    jam.radius_m = 200.0;
    jam.start = SimTime::seconds(10.0);
    jam.stop = SimTime::seconds(25.0);
    cfg.faults.jams.push_back(jam);
    expect_equivalent(cfg);
}

TEST(ChannelGridEquivalence, UnderCrashesGpsNoiseAndAlsOutage) {
    ScenarioConfig cfg = matrix_config(Scheme::kAgfwAck, 13);
    cfg.location_service = routing::LocationService::Mode::kAnonymous;
    cfg.traffic_start_s = 15.0;
    cfg.faults.crashes.push_back({3, SimTime::seconds(12.0), SimTime::seconds(10.0)});
    cfg.faults.crashes.push_back({8, SimTime::seconds(20.0), SimTime{}});
    fault::FaultPlan::GpsNoise gps;
    gps.sigma_m = 10.0;
    cfg.faults.gps_noise = gps;
    cfg.faults.als_outages.push_back({5, SimTime::seconds(18.0)});
    expect_equivalent(cfg);
}

TEST(ChannelGridEquivalence, RangeEqualsCsRange) {
    // Degenerate geometry the issue calls out: decode range == carrier-sense
    // range, so the cs pre-filter and the decode test coincide.
    ScenarioConfig cfg = matrix_config(Scheme::kAgfwAck, 17);
    cfg.phy.range_m = 250.0;
    cfg.phy.cs_range_m = 250.0;
    expect_equivalent(cfg);
}

// ---------------------------------------------------------------------------
// Rig-level edge cases (same rig shape as test_phy.cpp)

struct Rig {
    explicit Rig(PhyParams params = {}) : channel(sim, params) {}

    Radio& add(Radio::PositionFn pos) {
        radios.push_back(std::make_unique<Radio>(sim, channel, std::move(pos)));
        received.emplace_back();
        auto idx = received.size() - 1;
        radios.back()->set_mac_hooks(
            nullptr, nullptr, [this, idx](const Frame& f) { received[idx].push_back(f); });
        return *radios.back();
    }
    Radio& add(Vec2 pos) {
        return add([pos] { return pos; });
    }

    Frame frame(std::uint32_t bytes = 100) {
        Frame f;
        f.type = Frame::Type::kData;
        f.wire_bytes = bytes;
        return f;
    }

    sim::Simulator sim;
    Channel channel;
    std::vector<std::unique_ptr<Radio>> radios;
    std::vector<std::vector<Frame>> received;
};

/// Stationary grid (no mobility slack): cell size is exactly cs_range_m.
PhyParams static_grid_params() {
    PhyParams p;
    p.grid_max_speed_mps = 0.0;
    return p;
}

TEST(ChannelGrid, DeliveryAtExactDecodeRange) {
    Rig rig(static_grid_params());
    Radio& tx = rig.add({0, 0});
    rig.add({250, 0});  // d == range_m exactly
    rig.add({250.001, 0});
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(rig.received[1].size(), 1u);
    EXPECT_TRUE(rig.received[2].empty());
}

TEST(ChannelGrid, NodesExactlyOnCellBoundaries) {
    // Cell size is 550 m here. Positions at exact multiples of the cell size
    // land on bucket edges; receivers one cell over (including diagonal)
    // must still be found, and in-range delivery must be unaffected.
    Rig rig(static_grid_params());
    Radio& tx = rig.add({550.0, 550.0});  // corner of four cells
    rig.add({550.0 - 200.0, 550.0});      // cell (0,1) in x, in range
    rig.add({550.0 + 200.0, 550.0});      // cell (1,1), in range
    rig.add({550.0, 550.0 - 200.0});      // cell (1,0) via y edge... in range
    rig.add({550.0 - 150.0, 550.0 - 150.0});  // diagonal neighbor cell
    rig.add({1100.0, 550.0});             // exactly on next boundary, d=550: cs only
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(rig.received[1].size(), 1u);
    EXPECT_EQ(rig.received[2].size(), 1u);
    EXPECT_EQ(rig.received[3].size(), 1u);
    EXPECT_EQ(rig.received[4].size(), 1u);
    EXPECT_TRUE(rig.received[5].empty());  // in cs range only: energy, no decode
    EXPECT_EQ(rig.channel.stats().deliveries, 4u);
}

TEST(ChannelGrid, NegativeCoordinatesBucketCorrectly) {
    Rig rig(static_grid_params());
    Radio& tx = rig.add({-10.0, -10.0});  // cell (-1,-1)
    rig.add({100.0, 100.0});              // cell (0,0), d ~ 155 m
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(rig.received[1].size(), 1u);
}

TEST(ChannelGrid, MovingRadioIsReBucketed) {
    // The receiver starts out of decode range, then drifts in. With a short
    // rebucket interval every transmission sees a fresh sweep, so the grid
    // tracks the PositionFn without any explicit notification.
    PhyParams p;
    p.grid_rebucket_interval = SimTime::micros(1);
    p.grid_max_speed_mps = 0.0;
    Rig rig(p);
    auto rx_pos = std::make_shared<Vec2>(Vec2{2000.0, 0.0});
    Radio& tx = rig.add({0, 0});
    rig.add([rx_pos] { return *rx_pos; });
    rig.sim.at(SimTime::zero(), [&] { tx.start_tx(rig.frame()); });
    rig.sim.at(SimTime::seconds(1.0), [&, rx_pos] {
        *rx_pos = {200.0, 0.0};
        tx.start_tx(rig.frame());
    });
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);  // only the second frame
}

TEST(ChannelGrid, StaleBucketStillExactWithinSpeedHint) {
    // Between sweeps a radio may sit in a stale bucket; the mobility slack in
    // the cell size must keep it reachable. Drift right up to the worst case:
    // speed hint x interval metres between two transmissions inside one
    // sweep period.
    PhyParams p;
    p.grid_rebucket_interval = SimTime::seconds(10.0);
    p.grid_max_speed_mps = 50.0;  // slack = 500 m
    Rig rig(p);
    auto rx_pos = std::make_shared<Vec2>(Vec2{700.0, 0.0});  // out of range, bucketed
    Radio& tx = rig.add({0, 0});
    rig.add([rx_pos] { return *rx_pos; });
    rig.sim.at(SimTime::zero(), [&] { tx.start_tx(rig.frame()); });  // sweeps at t=0
    rig.sim.at(SimTime::seconds(9.9), [&, rx_pos] {
        *rx_pos = {210.0, 0.0};  // drifted 490 m < slack; no sweep yet
        tx.start_tx(rig.frame());
    });
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);
}

TEST(ChannelGrid, LateRegisteredRadioHeardBeforeFirstSweep) {
    // A radio added mid-run sits on the unbucketed list until the next sweep;
    // it must already be a reception candidate in that window.
    PhyParams p;
    p.grid_rebucket_interval = SimTime::seconds(100.0);
    Rig rig(p);
    Radio& tx = rig.add({0, 0});
    rig.sim.at(SimTime::zero(), [&] { tx.start_tx(rig.frame()); });  // sweep happens
    rig.sim.at(SimTime::seconds(1.0), [&] {
        rig.add({100.0, 0.0});  // registered long before the next sweep
    });
    rig.sim.at(SimTime::seconds(2.0), [&] { tx.start_tx(rig.frame()); });
    rig.sim.run();
    ASSERT_EQ(rig.received[1].size(), 1u);
}

TEST(ChannelGrid, BruteForceConfigFlag) {
    PhyParams p;
    p.brute_force = true;
    Rig rig(p);
    EXPECT_TRUE(rig.channel.brute_force());
    Radio& tx = rig.add({0, 0});
    rig.add({200, 0});
    tx.start_tx(rig.frame());
    rig.sim.run();
    EXPECT_EQ(rig.received[1].size(), 1u);
}

TEST(ChannelGrid, BruteForceEnvVar) {
    ::setenv("GEOANON_BRUTE_FORCE_CHANNEL", "1", 1);
    {
        sim::Simulator sim;
        Channel channel(sim, PhyParams{});
        EXPECT_TRUE(channel.brute_force());
    }
    ::unsetenv("GEOANON_BRUTE_FORCE_CHANNEL");
    {
        sim::Simulator sim;
        Channel channel(sim, PhyParams{});
        EXPECT_FALSE(channel.brute_force());
    }
}

}  // namespace
