#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace {

using namespace geoanon::sim;
using geoanon::util::SimTime;
using namespace geoanon::util::literals;

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.at(3_s, [&] { order.push_back(3); });
    sim.at(1_s, [&] { order.push_back(1); });
    sim.at(2_s, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoTieBreakAtSameTime) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) sim.at(1_s, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
    Simulator sim;
    SimTime seen{};
    sim.at(5_s, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 5_s);
}

TEST(Simulator, AfterIsRelative) {
    Simulator sim;
    SimTime seen{};
    sim.at(2_s, [&] { sim.after(3_s, [&] { seen = sim.now(); }); });
    sim.run();
    EXPECT_EQ(seen, 5_s);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
    Simulator sim;
    int fired = 0;
    sim.at(1_s, [&] { ++fired; });
    sim.at(10_s, [&] { ++fired; });
    sim.run_until(5_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 5_s);
    sim.run_until(20_s);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool ran = false;
    const EventId id = sim.at(1_s, [&] { ran = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
    Simulator sim;
    int runs = 0;
    const EventId id = sim.at(1_s, [&] { ++runs; });
    sim.run();
    sim.cancel(id);  // already fired: harmless
    sim.cancel(kInvalidEvent);
    sim.at(2_s, [&] { ++runs; });
    sim.run();
    EXPECT_EQ(runs, 2);
}

TEST(Simulator, PendingEventsSurvivesCancelOfFiredId) {
    // Regression: cancelling an id that has already fired used to leave it in
    // the cancelled set forever, so pending_events() (heap minus cancelled)
    // underflowed as soon as the queue refilled.
    Simulator sim;
    const EventId id = sim.at(1_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.cancel(id);  // fired long ago: must not count
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.at(2_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
    Simulator sim;
    const EventId id = sim.at(1_s, [] {});
    sim.at(2_s, [] {});
    sim.cancel(id);
    sim.cancel(id);  // idempotent: the event is only discounted once
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.events_processed(), 1u);
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelledEventLeavesAccountingCleanAfterSkip) {
    Simulator sim;
    const EventId id = sim.at(1_s, [] {});
    sim.cancel(id);
    sim.run();  // the cancelled event is skipped and fully retired
    sim.cancel(id);  // cancelling the skipped id again: no-op
    sim.at(2_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, PeakPendingTracksHighWaterMark) {
    Simulator sim;
    EXPECT_EQ(sim.peak_pending(), 0u);
    for (int i = 1; i <= 5; ++i) sim.at(SimTime::seconds(i), [] {});
    EXPECT_EQ(sim.peak_pending(), 5u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(sim.peak_pending(), 5u);  // high-water mark is sticky
}

TEST(Simulator, PastEventsClampToNow) {
    Simulator sim;
    SimTime when{};
    sim.at(5_s, [&] { sim.at(1_s, [&] { when = sim.now(); }); });
    sim.run();
    EXPECT_EQ(when, 5_s);  // the "past" event ran at the current time
}

TEST(Simulator, StopExitsRunLoop) {
    Simulator sim;
    int fired = 0;
    sim.at(1_s, [&] {
        ++fired;
        sim.stop();
    });
    sim.at(2_s, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    sim.run();  // resumes with remaining events
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsProcessedCount) {
    Simulator sim;
    for (int i = 0; i < 7; ++i) sim.at(SimTime::millis(i), [] {});
    sim.run();
    EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, CallbackCanScheduleAtCurrentTime) {
    Simulator sim;
    std::vector<int> order;
    sim.at(1_s, [&] {
        order.push_back(1);
        sim.after(SimTime::zero(), [&] { order.push_back(2); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PeriodicTimer, TicksAtPeriod) {
    Simulator sim;
    PeriodicTimer timer;
    std::vector<SimTime> ticks;
    timer.start(sim, 1_s, 500_ms, [&] { ticks.push_back(sim.now()); });
    sim.run_until(3600_ms);
    ASSERT_EQ(ticks.size(), 4u);  // 0.5, 1.5, 2.5, 3.5
    EXPECT_EQ(ticks[0], 500_ms);
    EXPECT_EQ(ticks[3], 3500_ms);
}

TEST(PeriodicTimer, StopHaltsTicks) {
    Simulator sim;
    PeriodicTimer timer;
    int ticks = 0;
    timer.start(sim, 1_s, 1_s, [&] {
        if (++ticks == 2) timer.stop();
    });
    sim.run_until(10_s);
    EXPECT_EQ(ticks, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructorCancels) {
    Simulator sim;
    int ticks = 0;
    {
        PeriodicTimer timer;
        timer.start(sim, 1_s, 1_s, [&] { ++ticks; });
    }
    sim.run_until(5_s);
    EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTimer, RestartReplacesSchedule) {
    Simulator sim;
    PeriodicTimer timer;
    int a = 0, b = 0;
    timer.start(sim, 1_s, 1_s, [&] { ++a; });
    timer.start(sim, 2_s, 2_s, [&] { ++b; });  // restart with new cadence
    sim.run_until(6500_ms);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 3);  // 2, 4, 6
}

}  // namespace
