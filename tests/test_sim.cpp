#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace geoanon::sim;
using geoanon::util::Rng;
using geoanon::util::SimTime;
using namespace geoanon::util::literals;

/// Every kernel-behavior test runs against both event-queue kernels: the
/// timer wheel (production) and the binary heap (differential baseline).
/// They must be observationally identical.
class SimulatorKernels : public ::testing::TestWithParam<QueueKind> {
  protected:
    Simulator sim{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(AllKernels, SimulatorKernels,
                         ::testing::Values(QueueKind::kTimerWheel, QueueKind::kBinaryHeap),
                         [](const auto& info) {
                             return info.param == QueueKind::kTimerWheel ? "TimerWheel"
                                                                         : "BinaryHeap";
                         });

TEST_P(SimulatorKernels, RunsEventsInTimeOrder) {
    std::vector<int> order;
    sim.at(3_s, [&] { order.push_back(3); });
    sim.at(1_s, [&] { order.push_back(1); });
    sim.at(2_s, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SimulatorKernels, FifoTieBreakAtSameTime) {
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) sim.at(1_s, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(SimulatorKernels, ClockAdvancesToEventTime) {
    SimTime seen{};
    sim.at(5_s, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 5_s);
}

TEST_P(SimulatorKernels, AfterIsRelative) {
    SimTime seen{};
    sim.at(2_s, [&] { sim.after(3_s, [&] { seen = sim.now(); }); });
    sim.run();
    EXPECT_EQ(seen, 5_s);
}

TEST_P(SimulatorKernels, RunUntilStopsAtHorizonAndAdvancesClock) {
    int fired = 0;
    sim.at(1_s, [&] { ++fired; });
    sim.at(10_s, [&] { ++fired; });
    sim.run_until(5_s);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 5_s);
    sim.run_until(20_s);
    EXPECT_EQ(fired, 2);
}

TEST_P(SimulatorKernels, CancelPreventsExecution) {
    bool ran = false;
    const EventId id = sim.at(1_s, [&] { ran = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(ran);
}

TEST_P(SimulatorKernels, CancelIsIdempotentAndSafeAfterFire) {
    int runs = 0;
    const EventId id = sim.at(1_s, [&] { ++runs; });
    sim.run();
    sim.cancel(id);  // already fired: harmless
    sim.cancel(kInvalidEvent);
    sim.at(2_s, [&] { ++runs; });
    sim.run();
    EXPECT_EQ(runs, 2);
}

TEST_P(SimulatorKernels, PendingEventsSurvivesCancelOfFiredId) {
    // Regression: cancelling an id that has already fired used to leave it in
    // the cancelled set forever, so pending_events() (heap minus cancelled)
    // underflowed as soon as the queue refilled.
    const EventId id = sim.at(1_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.cancel(id);  // fired long ago: must not count
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.at(2_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST_P(SimulatorKernels, DoubleCancelCountsOnce) {
    const EventId id = sim.at(1_s, [] {});
    sim.at(2_s, [] {});
    sim.cancel(id);
    sim.cancel(id);  // idempotent: the event is only discounted once
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(sim.events_processed(), 1u);
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST_P(SimulatorKernels, CancelledEventLeavesAccountingCleanAfterSkip) {
    const EventId id = sim.at(1_s, [] {});
    sim.cancel(id);
    sim.run();  // the cancelled event is skipped and fully retired
    sim.cancel(id);  // cancelling the skipped id again: no-op
    sim.at(2_s, [] {});
    EXPECT_EQ(sim.pending_events(), 1u);
}

TEST_P(SimulatorKernels, PeakPendingTracksHighWaterMark) {
    EXPECT_EQ(sim.peak_pending(), 0u);
    for (int i = 1; i <= 5; ++i) sim.at(SimTime::seconds(i), [] {});
    EXPECT_EQ(sim.peak_pending(), 5u);
    sim.run();
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(sim.peak_pending(), 5u);  // high-water mark is sticky
}

TEST_P(SimulatorKernels, PastEventsClampToNow) {
    SimTime when{};
    sim.at(5_s, [&] { sim.at(1_s, [&] { when = sim.now(); }); });
    sim.run();
    EXPECT_EQ(when, 5_s);  // the "past" event ran at the current time
}

TEST_P(SimulatorKernels, StopExitsRunLoop) {
    int fired = 0;
    sim.at(1_s, [&] {
        ++fired;
        sim.stop();
    });
    sim.at(2_s, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    sim.run();  // resumes with remaining events
    EXPECT_EQ(fired, 2);
}

TEST_P(SimulatorKernels, EventsProcessedCount) {
    for (int i = 0; i < 7; ++i) sim.at(SimTime::millis(i), [] {});
    sim.run();
    EXPECT_EQ(sim.events_processed(), 7u);
}

TEST_P(SimulatorKernels, CallbackCanScheduleAtCurrentTime) {
    std::vector<int> order;
    sim.at(1_s, [&] {
        order.push_back(1);
        sim.after(SimTime::zero(), [&] { order.push_back(2); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(SimulatorKernels, MoveOnlyCallbackRunsExactlyOnce) {
    // Regression for the pre-arena kernel, which moved the callback out of a
    // const priority_queue top via const_cast — easy to accidentally invoke a
    // moved-from or doubly-moved closure. A move-only capture makes any
    // double-invoke or copy a compile- or run-time error.
    int runs = 0;
    bool token_intact = false;
    auto token = std::make_unique<int>(7);
    sim.at(1_s, [t = std::move(token), &runs, &token_intact] {
        ++runs;
        // A doubly-moved or replayed closure would hold a null unique_ptr.
        token_intact = t != nullptr && *t == 7;
    });
    sim.run();
    EXPECT_EQ(runs, 1);
    EXPECT_TRUE(token_intact);
    sim.run();  // queue is empty; the event must not replay
    EXPECT_EQ(runs, 1);
}

TEST_P(SimulatorKernels, AfterSaturatesAtSimTimeMax) {
    // after(huge) from a nonzero now must clamp to SimTime::max(), not
    // overflow. The sentinel lands in the wheel's overflow bucket and still
    // fires, exactly once, when the clock is run all the way out.
    int fired_at_max = 0;
    SimTime seen{};
    sim.at(5_s, [&] {
        sim.after(SimTime::max(), [&] {
            ++fired_at_max;
            seen = sim.now();
        });
    });
    sim.run_until(10_s);
    EXPECT_EQ(fired_at_max, 0);  // horizon short of the sentinel
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run();
    EXPECT_EQ(fired_at_max, 1);
    EXPECT_EQ(seen, SimTime::max());
}

TEST_P(SimulatorKernels, FarFutureEventsBeyondWheelHorizonStayOrdered) {
    // Events farther than the wheel's 2^57 ns span (~4 years) from the
    // cursor go through the overflow bucket; they must still fire in time
    // order, interleaved correctly with near events.
    const double year_s = 365.0 * 24 * 3600;
    std::vector<int> order;
    sim.at(SimTime::seconds(10 * year_s), [&] { order.push_back(3); });
    sim.at(SimTime::seconds(6 * year_s), [&] { order.push_back(2); });
    sim.at(1_s, [&] { order.push_back(1); });
    sim.at(SimTime::seconds(20 * year_s), [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

/// Deterministic schedule/cancel storm replayed on both kernels: the exact
/// firing sequences must match event for event. This is the unit-level
/// analogue of bench/scaling_grid --differential.
TEST(SimulatorKernelEquivalence, ScheduleCancelStormMatchesAcrossKernels) {
    const auto storm = [](QueueKind kind) {
        Simulator sim(kind);
        Rng rng(1234);
        std::vector<std::pair<std::int64_t, int>> fired;
        std::vector<EventId> open;
        for (int i = 0; i < 2000; ++i) {
            const auto delay = SimTime::nanos(rng.uniform_int(0, 5'000'000));
            open.push_back(sim.at(delay, [&fired, &sim, i] {
                fired.emplace_back(sim.now().ns(), i);
            }));
            // Cancel a pseudo-random earlier event every few schedules.
            if (i % 3 == 0 && !open.empty()) {
                const auto victim =
                    static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(open.size()) - 1));
                sim.cancel(open[victim]);
            }
        }
        sim.run();
        return fired;
    };
    const auto wheel = storm(QueueKind::kTimerWheel);
    const auto heap = storm(QueueKind::kBinaryHeap);
    EXPECT_EQ(wheel, heap);
    EXPECT_FALSE(wheel.empty());
}

TEST(PeriodicTimer, TicksAtPeriod) {
    Simulator sim;
    PeriodicTimer timer;
    std::vector<SimTime> ticks;
    timer.start(sim, 1_s, 500_ms, [&] { ticks.push_back(sim.now()); });
    sim.run_until(3600_ms);
    ASSERT_EQ(ticks.size(), 4u);  // 0.5, 1.5, 2.5, 3.5
    EXPECT_EQ(ticks[0], 500_ms);
    EXPECT_EQ(ticks[3], 3500_ms);
}

TEST(PeriodicTimer, StopHaltsTicks) {
    Simulator sim;
    PeriodicTimer timer;
    int ticks = 0;
    timer.start(sim, 1_s, 1_s, [&] {
        if (++ticks == 2) timer.stop();
    });
    sim.run_until(10_s);
    EXPECT_EQ(ticks, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructorCancels) {
    Simulator sim;
    int ticks = 0;
    {
        PeriodicTimer timer;
        timer.start(sim, 1_s, 1_s, [&] { ++ticks; });
    }
    sim.run_until(5_s);
    EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTimer, RestartReplacesSchedule) {
    Simulator sim;
    PeriodicTimer timer;
    int a = 0, b = 0;
    timer.start(sim, 1_s, 1_s, [&] { ++a; });
    timer.start(sim, 2_s, 2_s, [&] { ++b; });  // restart with new cadence
    sim.run_until(6500_ms);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 3);  // 2, 4, 6
}

TEST(PeriodicTimer, StopThenRestartTicksAgain) {
    Simulator sim;
    PeriodicTimer timer;
    int first = 0, second = 0;
    timer.start(sim, 1_s, 1_s, [&] { ++first; });
    sim.run_until(2500_ms);
    timer.stop();
    EXPECT_FALSE(timer.running());
    sim.run_until(5_s);
    EXPECT_EQ(first, 2);  // no ticks while stopped
    timer.start(sim, 1_s, 1_s, [&] { ++second; });
    EXPECT_TRUE(timer.running());
    sim.run_until(8500_ms);
    EXPECT_EQ(first, 2);
    EXPECT_EQ(second, 3);  // 6, 7, 8
}

TEST(PeriodicTimer, JitterIsDeterministicPerSeed) {
    const auto run_ticks = [](std::uint64_t seed) {
        Simulator sim;
        Rng rng(seed);
        PeriodicTimer timer;
        std::vector<std::int64_t> ticks;
        timer.start(sim, 1_s, SimTime::zero(), 100_ms, rng,
                    [&] { ticks.push_back(sim.now().ns()); });
        sim.run_until(20_s);
        return ticks;
    };
    const auto a = run_ticks(7);
    const auto b = run_ticks(7);
    const auto c = run_ticks(8);
    EXPECT_EQ(a, b);  // same seed: byte-identical schedule
    EXPECT_NE(a, c);  // different seed: different jitter draws
    // Jitter must actually perturb the nominal cadence.
    ASSERT_GE(a.size(), 2u);
    bool any_offset = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] % 1'000'000'000 != 0) any_offset = true;
    }
    EXPECT_TRUE(any_offset);
}

TEST(PeriodicTimer, ZeroJitterDrawsNoRng) {
    // Enabling the jitter knob at zero must not consume RNG draws, so turning
    // it on cannot perturb replay of a run recorded without it.
    Simulator sim;
    Rng rng(42);
    Rng control(42);
    PeriodicTimer timer;
    int ticks = 0;
    timer.start(sim, 1_s, SimTime::zero(), SimTime::zero(), rng, [&] { ++ticks; });
    sim.run_until(5500_ms);
    EXPECT_EQ(ticks, 6);
    EXPECT_EQ(rng.uniform_int(0, 1 << 30), control.uniform_int(0, 1 << 30));
}

}  // namespace
