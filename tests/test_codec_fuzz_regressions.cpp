// Deterministic replay of the checked-in fuzz corpus (fuzz/corpus/*.hex)
// plus directed malformed-input cases, so CI exercises the codec's
// untrusted-input handling without libFuzzer. Mirrors the properties in
// fuzz/fuzz_codec.cpp: decode never crashes, rejections are classified, and
// accepted packets re-encode to a fixed point.

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace geoanon;
using net::Packet;
using net::PacketType;
using net::codec::decode_ex;
using net::codec::DecodeError;
using net::codec::encode;
using util::Bytes;
using util::SimTime;
using util::Vec2;

std::filesystem::path corpus_dir() { return GEOANON_CORPUS_DIR; }

Bytes load_hex_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::string hex;
    std::string line;
    while (std::getline(in, line))
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c))) hex.push_back(c);
    auto bytes = util::from_hex(hex);
    EXPECT_TRUE(bytes.has_value()) << path << ": corpus file is not valid hex";
    return bytes.value_or(Bytes{});
}

/// The shared property set. Returns the decode error for further assertions.
DecodeError check_properties(const Bytes& wire) {
    const auto result = decode_ex(wire);
    EXPECT_EQ(result.packet.has_value(), result.error == DecodeError::kOk);
    if (result.packet) {
        const auto once = encode(*result.packet);
        const auto again = decode_ex(once);
        EXPECT_TRUE(again.packet.has_value())
            << "re-encoded packet must decode (error: "
            << net::codec::decode_error_name(again.error) << ")";
        if (again.packet) {
            EXPECT_EQ(encode(*again.packet), once);
        }
    }
    // Trace-trailer mode must be equally total.
    const auto traced = decode_ex(wire, /*include_trace=*/true);
    EXPECT_EQ(traced.packet.has_value(), traced.error == DecodeError::kOk);
    return result.error;
}

Packet sample_data_packet() {
    Packet p;
    p.type = PacketType::kAgfwData;
    p.dst_loc = Vec2{812.5, 137.25};
    p.next_hop_pseudonym = 0x0000A1B2C3D4E5ULL;
    p.trapdoor = Bytes{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
    p.body = Bytes(16, 0xAB);
    return p;
}

TEST(CodecFuzzRegressions, CorpusDirectoryIsPresentAndNonTrivial) {
    ASSERT_TRUE(std::filesystem::is_directory(corpus_dir()))
        << "expected checked-in corpus at " << corpus_dir();
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(corpus_dir()))
        if (e.path().extension() == ".hex") ++n;
    EXPECT_GE(n, 20u) << "corpus unexpectedly small; regenerate with make_corpus";
}

TEST(CodecFuzzRegressions, ReplayWholeCorpus) {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
        if (entry.path().extension() != ".hex") continue;
        SCOPED_TRACE(entry.path().filename().string());
        const Bytes wire = load_hex_file(entry.path());
        const DecodeError err = check_properties(wire);
        const std::string name = entry.path().filename().string();
        if (name.rfind("valid_", 0) == 0 && name.find("traced") == std::string::npos) {
            EXPECT_EQ(err, DecodeError::kOk);
            ++accepted;
        } else if (name.rfind("reject_", 0) == 0) {
            EXPECT_NE(err, DecodeError::kOk);
            ++rejected;
        }
    }
    EXPECT_GE(accepted, 10u);
    EXPECT_GE(rejected, 8u);
}

TEST(CodecFuzzRegressions, EveryTruncationOfEveryValidSeedRejectsCleanly) {
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("valid_", 0) != 0 || name.find("traced") != std::string::npos)
            continue;
        SCOPED_TRACE(name);
        const Bytes wire = load_hex_file(entry.path());
        for (std::size_t len = 0; len < wire.size(); ++len) {
            const auto result = decode_ex({wire.data(), len});
            // Prefixes may occasionally still parse (body-remainder types
            // shrink), but they must never crash and must stay classified.
            EXPECT_EQ(result.packet.has_value(), result.error == DecodeError::kOk);
        }
    }
}

TEST(CodecFuzzRegressions, TruncatedHeaderClassifiedTruncated) {
    const Bytes wire = encode(sample_data_packet());
    for (std::size_t len : {std::size_t{1}, std::size_t{5}, std::size_t{17}}) {
        const auto result = decode_ex({wire.data(), len});
        EXPECT_EQ(result.error, DecodeError::kTruncated) << "prefix " << len;
    }
}

TEST(CodecFuzzRegressions, OversizedLengthFieldClassifiedBadLength) {
    // kAgfwData: td_len sits after type, flags, dst_loc (16), pseudonym (6).
    Bytes wire = encode(sample_data_packet());
    const std::size_t td_len_at = 1 + 1 + 16 + 6;
    wire[td_len_at] = 0xFF;
    wire[td_len_at + 1] = 0xFF;
    const auto result = decode_ex(wire);
    EXPECT_EQ(result.error, DecodeError::kBadLength);

    // kAgfwAck: a count field promising more uids than bytes remain.
    Packet ack;
    ack.type = PacketType::kAgfwAck;
    ack.ack_uids = {7};
    Bytes ack_wire = encode(ack);
    ack_wire[1] = 0xFF;
    ack_wire[2] = 0xFF;
    EXPECT_EQ(decode_ex(ack_wire).error, DecodeError::kBadLength);
}

TEST(CodecFuzzRegressions, ZeroPseudonymLastHopRoundTripsAndRejectsWhenCut) {
    Packet last = sample_data_packet();
    last.next_hop_pseudonym = 0;  // §3.2 "last forwarding attempt"
    const Bytes wire = encode(last);
    const auto ok = decode_ex(wire);
    ASSERT_TRUE(ok.packet.has_value());
    EXPECT_EQ(ok.packet->next_hop_pseudonym, 0u);
    EXPECT_EQ(ok.packet->trapdoor, last.trapdoor);

    Bytes cut = wire;
    cut.resize(1 + 1 + 16 + 6 + 1);  // mid td_len
    EXPECT_EQ(decode_ex(cut).error, DecodeError::kTruncated);
}

TEST(CodecFuzzRegressions, BadTypeAndEmptyAndTrailing) {
    EXPECT_EQ(decode_ex({}).error, DecodeError::kEmpty);
    const Bytes bad{0xFE, 0x01, 0x02};
    EXPECT_EQ(decode_ex(bad).error, DecodeError::kBadType);

    Packet hello;
    hello.type = PacketType::kGpsrHello;
    hello.src_id = 1;
    Bytes wire = encode(hello);
    wire.push_back(0xEE);
    EXPECT_EQ(decode_ex(wire).error, DecodeError::kTrailingBytes);
}

TEST(CodecFuzzRegressions, SeededMutationSweepIsTotal) {
    // A deterministic miniature fuzzer: byte flips, splices, and length
    // corruption over every valid seed, driven by the repo's seeded PRNG so
    // every CI run covers the identical input set.
    util::Rng rng(0xF0221);
    std::vector<Bytes> seeds;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir()))
        if (entry.path().filename().string().rfind("valid_", 0) == 0)
            seeds.push_back(load_hex_file(entry.path()));
    ASSERT_FALSE(seeds.empty());

    for (int iter = 0; iter < 4000; ++iter) {
        Bytes mut = seeds[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
        const int edits = static_cast<int>(rng.uniform_int(1, 8));
        for (int e = 0; e < edits && !mut.empty(); ++e) {
            const auto pos = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(mut.size()) - 1));
            switch (rng.uniform_int(0, 2)) {
                case 0:  // flip
                    mut[pos] = static_cast<std::uint8_t>(rng.next_u64());
                    break;
                case 1:  // truncate
                    mut.resize(pos);
                    break;
                default:  // extend with junk
                    mut.push_back(static_cast<std::uint8_t>(rng.next_u64()));
                    break;
            }
        }
        const auto result = decode_ex(mut);
        ASSERT_EQ(result.packet.has_value(), result.error == DecodeError::kOk);
        const auto traced = decode_ex(mut, /*include_trace=*/true);
        ASSERT_EQ(traced.packet.has_value(), traced.error == DecodeError::kOk);
    }
}

}  // namespace
