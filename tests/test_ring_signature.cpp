#include <gtest/gtest.h>

#include "crypto/ring_signature.hpp"
#include "util/rng.hpp"

namespace {

using namespace geoanon::crypto;
using geoanon::util::Bytes;
using geoanon::util::ByteReader;
using geoanon::util::Rng;

class RingTest : public ::testing::Test {
  protected:
    static constexpr std::size_t kBits = 256;

    void SetUp() override {
        for (int i = 0; i < 4; ++i) {
            keypairs_.push_back(rsa_generate(rng_, kBits));
            ring_.push_back(keypairs_.back().pub);
        }
    }

    Rng rng_{777};
    std::vector<RsaKeyPair> keypairs_;
    std::vector<RsaPublicKey> ring_;
    Bytes msg_{'h', 'e', 'l', 'l', 'o'};
};

TEST_F(RingTest, SignVerify) {
    const RingSignature sig = ring_sign(msg_, ring_, 1, keypairs_[1].priv, rng_);
    EXPECT_TRUE(ring_verify(msg_, ring_, sig));
}

TEST_F(RingTest, EveryMemberCanSign) {
    // Signer ambiguity baseline: a valid signature exists for every slot and
    // verification cannot tell them apart (all verify against the same ring).
    for (std::size_t s = 0; s < ring_.size(); ++s) {
        const RingSignature sig = ring_sign(msg_, ring_, s, keypairs_[s].priv, rng_);
        EXPECT_TRUE(ring_verify(msg_, ring_, sig)) << "signer " << s;
        EXPECT_EQ(sig.ring_size(), ring_.size());
    }
}

TEST_F(RingTest, RingOfOne) {
    std::vector<RsaPublicKey> solo{ring_[0]};
    const RingSignature sig = ring_sign(msg_, solo, 0, keypairs_[0].priv, rng_);
    EXPECT_TRUE(ring_verify(msg_, solo, sig));
}

TEST_F(RingTest, WrongMessageRejected) {
    const RingSignature sig = ring_sign(msg_, ring_, 0, keypairs_[0].priv, rng_);
    EXPECT_FALSE(ring_verify(Bytes{'h', 'e', 'l', 'l', 'O'}, ring_, sig));
}

TEST_F(RingTest, WrongRingRejected) {
    const RingSignature sig = ring_sign(msg_, ring_, 0, keypairs_[0].priv, rng_);
    // Reordering the ring changes the combining key: must fail.
    std::vector<RsaPublicKey> reordered{ring_[1], ring_[0], ring_[2], ring_[3]};
    EXPECT_FALSE(ring_verify(msg_, reordered, sig));
    // Substituting a member must fail too.
    RsaKeyPair outsider = rsa_generate(rng_, kBits);
    std::vector<RsaPublicKey> swapped = ring_;
    swapped[2] = outsider.pub;
    EXPECT_FALSE(ring_verify(msg_, swapped, sig));
}

TEST_F(RingTest, TamperedGlueOrXsRejected) {
    RingSignature sig = ring_sign(msg_, ring_, 2, keypairs_[2].priv, rng_);
    RingSignature bad_v = sig;
    bad_v.v[0] ^= 1;
    EXPECT_FALSE(ring_verify(msg_, ring_, bad_v));
    RingSignature bad_x = sig;
    bad_x.xs[3][5] ^= 1;
    EXPECT_FALSE(ring_verify(msg_, ring_, bad_x));
}

TEST_F(RingTest, SizeMismatchRejected) {
    RingSignature sig = ring_sign(msg_, ring_, 0, keypairs_[0].priv, rng_);
    RingSignature short_sig = sig;
    short_sig.xs.pop_back();
    EXPECT_FALSE(ring_verify(msg_, ring_, short_sig));
    RingSignature bad_block = sig;
    bad_block.block_bytes -= 2;
    EXPECT_FALSE(ring_verify(msg_, ring_, bad_block));
}

TEST_F(RingTest, SerializeRoundTrip) {
    const RingSignature sig = ring_sign(msg_, ring_, 3, keypairs_[3].priv, rng_);
    const Bytes ser = sig.serialize();
    ByteReader r(ser);
    const auto back = RingSignature::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(ring_verify(msg_, ring_, *back));
    EXPECT_EQ(back->v, sig.v);
    EXPECT_EQ(back->xs, sig.xs);
}

TEST_F(RingTest, SizeGrowsLinearlyWithRing) {
    // §4: the anonymity/overhead trade — signature bytes grow with k.
    const std::size_t block = ring_block_bytes(ring_);
    const RingSignature sig = ring_sign(msg_, ring_, 0, keypairs_[0].priv, rng_);
    EXPECT_EQ(sig.size_bytes(), block + ring_.size() * block);

    std::vector<RsaPublicKey> solo{ring_[0]};
    const RingSignature small = ring_sign(msg_, solo, 0, keypairs_[0].priv, rng_);
    EXPECT_LT(small.size_bytes(), sig.size_bytes());
}

TEST_F(RingTest, BlockBytesCoverModulus) {
    const std::size_t block = ring_block_bytes(ring_);
    EXPECT_GE(block * 8, kBits + 64);
    EXPECT_EQ(block % 2, 0u);
}

TEST_F(RingTest, MixedKeySizesVerify) {
    // Common-domain extension must handle rings with different modulus sizes.
    Rng rng2(31337);
    RsaKeyPair big = rsa_generate(rng2, 384);
    std::vector<RsaPublicKey> mixed{ring_[0], big.pub, ring_[1]};
    const RingSignature by_small = ring_sign(msg_, mixed, 0, keypairs_[0].priv, rng2);
    EXPECT_TRUE(ring_verify(msg_, mixed, by_small));
    const RingSignature by_big = ring_sign(msg_, mixed, 1, big.priv, rng2);
    EXPECT_TRUE(ring_verify(msg_, mixed, by_big));
}

}  // namespace
