#include <gtest/gtest.h>

#include "net/codec.hpp"
#include "routing/wire.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using net::Packet;
using net::PacketType;
using util::Bytes;
using util::SimTime;
using util::Vec2;
namespace codec = net::codec;

Packet base_packet(PacketType type) {
    Packet p;
    p.type = type;
    return p;
}

// -------------------------------------------------- size <-> constants

TEST(Codec, GpsrHelloSizeMatchesConstant) {
    Packet p = base_packet(PacketType::kGpsrHello);
    p.src_id = 7;
    p.hello_loc = {1, 2};
    EXPECT_EQ(codec::encoded_size(p), routing::kGpsrHelloBytes);
}

TEST(Codec, GpsrDataSizeMatchesConstant) {
    Packet p = base_packet(PacketType::kGpsrData);
    p.body = Bytes(64, 1);
    EXPECT_EQ(codec::encoded_size(p), routing::kGpsrDataHeaderBytes + 64);
}

TEST(Codec, AgfwHelloBaseSizeMatchesConstant) {
    Packet p = base_packet(PacketType::kAgfwHello);
    p.hello_pseudonym = 0x123456789ABC;
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwHelloBaseBytes);
    p.hello_velocity = {3.0, -1.0};
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwHelloBaseBytes + 8);
}

TEST(Codec, AgfwHelloAuthAddsSigAndRefs) {
    Packet p = base_packet(PacketType::kAgfwHello);
    p.auth = Bytes(236, 0x5A);
    p.ring_members = {1, 2, 3, 4, 5};
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwHelloBaseBytes + 2 + 236 + 2 +
                                          5 * routing::kCertReferenceBytes);
}

TEST(Codec, AgfwDataSizeMatchesConstant) {
    Packet p = base_packet(PacketType::kAgfwData);
    p.trapdoor = Bytes(64, 2);
    p.body = Bytes(64, 3);
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwDataHeaderBytes + 64 + 64);
    p.perimeter_mode = true;
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwDataHeaderBytes + 64 + 64 +
                                          routing::kPerimeterHeaderBytes);
}

TEST(Codec, AgfwAckSizeMatchesConstant) {
    Packet p = base_packet(PacketType::kAgfwAck);
    p.ack_uids = {42};
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwAckBytes);
    // Aggregated ACKs (§3.2): +8 bytes per additional uid.
    p.ack_uids = {42, 43, 44};
    EXPECT_EQ(codec::encoded_size(p), routing::kAgfwAckBytes + 16);
    const auto back = codec::decode(codec::encode(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ack_uids, (std::vector<std::uint64_t>{42, 43, 44}));
}

TEST(Codec, PlainLocSizesMatchConstants) {
    Packet up = base_packet(PacketType::kLocUpdate);
    up.ls_subject = 5;  // plain row
    EXPECT_EQ(codec::encoded_size(up), routing::kPlainUpdateBytes);

    Packet req = base_packet(PacketType::kLocRequest);
    req.ls_subject = 5;
    req.src_id = 2;
    EXPECT_EQ(codec::encoded_size(req), routing::kPlainRequestBytes);

    Packet rep = base_packet(PacketType::kLocReply);
    rep.dst_id = 2;
    rep.ls_subject = 5;
    EXPECT_EQ(codec::encoded_size(rep), routing::kPlainReplyBytes);
}

TEST(Codec, AnonymousRequestCarriesIndexLength) {
    Packet req = base_packet(PacketType::kLocRequest);
    req.ls_index = Bytes(16, 9);
    EXPECT_EQ(codec::encoded_size(req), routing::kLocHeaderBytes + 16 + 8 + 2 + 16);
    // Index-free: zero-length index field.
    Packet free_req = base_packet(PacketType::kLocRequest);
    EXPECT_EQ(codec::encoded_size(free_req), routing::kLocHeaderBytes + 16 + 8 + 2);
}

// -------------------------------------------------------------- round trips

TEST(Codec, GpsrHelloRoundTrip) {
    Packet p = base_packet(PacketType::kGpsrHello);
    p.src_id = 17;
    p.hello_loc = {123.5, -7.25};
    p.hello_ts = SimTime::millis(1234);
    const auto back = codec::decode(codec::encode(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->src_id, 17u);
    EXPECT_EQ(back->hello_loc, p.hello_loc);
    EXPECT_EQ(back->hello_ts, p.hello_ts);
}

TEST(Codec, AgfwHelloRoundTripWithAuth) {
    Packet p = base_packet(PacketType::kAgfwHello);
    p.hello_pseudonym = 0xA1B2C3D4E5F6;
    p.hello_loc = {10, 20};
    p.hello_velocity = {4.5, -2.0};
    p.hello_ts = SimTime::seconds(9.0);
    p.auth = Bytes{1, 2, 3, 4, 5};
    p.ring_members = {11, 22, 33};
    const auto back = codec::decode(codec::encode(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->hello_pseudonym, p.hello_pseudonym);
    EXPECT_EQ(back->hello_loc, p.hello_loc);
    EXPECT_NEAR(back->hello_velocity.x, 4.5, 1e-5);  // f32 quantized
    EXPECT_NEAR(back->hello_velocity.y, -2.0, 1e-5);
    EXPECT_EQ(back->auth, p.auth);
    EXPECT_EQ(back->ring_members, p.ring_members);
}

TEST(Codec, AgfwDataRoundTripGreedyAndPerimeter) {
    Packet p = base_packet(PacketType::kAgfwData);
    p.dst_loc = {1400.0, 250.0};
    p.next_hop_pseudonym = 0x00DEAD00BEEF;
    p.trapdoor = Bytes(64, 0x7E);
    p.body = Bytes{9, 8, 7};
    {
        const auto back = codec::decode(codec::encode(p));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->dst_loc, p.dst_loc);
        EXPECT_EQ(back->next_hop_pseudonym, p.next_hop_pseudonym);
        EXPECT_EQ(back->trapdoor, p.trapdoor);
        EXPECT_EQ(back->body, p.body);
        EXPECT_FALSE(back->perimeter_mode);
    }
    p.perimeter_mode = true;
    p.perimeter_entry = {200, 0};
    p.prev_hop_loc = {150, 200};
    p.perimeter_hops = 3;
    {
        const auto back = codec::decode(codec::encode(p));
        ASSERT_TRUE(back.has_value());
        EXPECT_TRUE(back->perimeter_mode);
        EXPECT_EQ(back->perimeter_entry, p.perimeter_entry);
        EXPECT_EQ(back->prev_hop_loc, p.prev_hop_loc);
        EXPECT_EQ(back->perimeter_hops, 3u);
        EXPECT_EQ(back->body, p.body);
    }
}

TEST(Codec, LocPacketsRoundTrip) {
    Packet up = base_packet(PacketType::kLocUpdate);
    up.grid = 3;
    up.dst_loc = {1050, 150};
    up.next_hop_pseudonym = 0x1234;
    up.ls_payload = Bytes(120, 0x31);  // anonymous rows
    {
        const auto back = codec::decode(codec::encode(up));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->grid, 3u);
        EXPECT_EQ(back->ls_payload, up.ls_payload);
        EXPECT_EQ(back->ls_subject, net::kInvalidNode);
    }
    Packet req = base_packet(PacketType::kLocRequest);
    req.grid = 2;
    req.requester_loc = {75, 75};
    req.ls_query_id = 0xABCDEF;
    req.ls_index = Bytes(16, 0x44);
    req.ls_assist = true;
    {
        const auto back = codec::decode(codec::encode(req));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->requester_loc, req.requester_loc);
        EXPECT_EQ(back->ls_query_id, req.ls_query_id);
        EXPECT_EQ(back->ls_index, req.ls_index);
        EXPECT_TRUE(back->ls_assist);
    }
    Packet rep = base_packet(PacketType::kLocReply);
    rep.dst_id = 4;
    rep.ls_subject = 9;
    rep.ls_subject_loc = {500, 100};
    rep.ls_query_id = 77;
    {
        const auto back = codec::decode(codec::encode(rep));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->dst_id, 4u);
        EXPECT_EQ(back->ls_subject, 9u);
        EXPECT_EQ(back->ls_subject_loc, rep.ls_subject_loc);
    }
}

TEST(Codec, LocDigestSizeAndRoundTrip) {
    Packet p = base_packet(PacketType::kLocDigest);
    p.grid = 4;
    p.next_hop_pseudonym = 0x5555;
    p.dst_loc = {1350, 150};
    p.ls_digest = {{0x1111111111111111ULL, 5'000'000'000ULL},
                   {0x2222222222222222ULL, 9'000'000'000ULL},
                   {0xFFFFFFFFFFFFFFFFULL, 0ULL}};
    EXPECT_EQ(codec::encoded_size(p),
              routing::kLocDigestHeaderBytes + 3 * routing::kLocDigestRowBytes);
    const auto back = codec::decode(codec::encode(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, PacketType::kLocDigest);
    EXPECT_EQ(back->grid, 4u);
    EXPECT_EQ(back->ls_digest, p.ls_digest);

    // Empty digest (a restarted server advertising nothing) is legal.
    Packet empty = base_packet(PacketType::kLocDigest);
    empty.grid = 1;
    EXPECT_EQ(codec::encoded_size(empty), routing::kLocDigestHeaderBytes);
    const auto eback = codec::decode(codec::encode(empty));
    ASSERT_TRUE(eback.has_value());
    EXPECT_TRUE(eback->ls_digest.empty());
}

TEST(Codec, LocDigestRejectsOverlongRowCount) {
    Packet p = base_packet(PacketType::kLocDigest);
    p.ls_digest = {{1, 2}};
    auto wire = codec::encode(p);
    // Inflate the u16 row count past the frame end (count sits right before
    // the 16 row bytes at the tail).
    const std::size_t count_off = wire.size() - routing::kLocDigestRowBytes - 2;
    wire[count_off] = 0xFF;
    wire[count_off + 1] = 0xFF;
    EXPECT_FALSE(codec::decode(wire).has_value());
}

TEST(Codec, TraceTrailerRoundTrip) {
    Packet p = base_packet(PacketType::kAgfwAck);
    p.ack_uids = {5};
    p.flow = 3;
    p.seq = 99;
    p.created_at = SimTime::millis(777);
    p.uid = 0xFEED;
    p.hops = 6;
    const auto wire = codec::encode(p, /*include_trace=*/true);
    EXPECT_EQ(wire.size(), routing::kAgfwAckBytes + 26);
    const auto back = codec::decode(wire, /*include_trace=*/true);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->flow, 3u);
    EXPECT_EQ(back->seq, 99u);
    EXPECT_EQ(back->created_at, SimTime::millis(777));
    EXPECT_EQ(back->uid, 0xFEEDu);
    EXPECT_EQ(back->hops, 6u);
}

// ------------------------------------------------------------- malformed

TEST(Codec, RejectsTruncation) {
    Packet p = base_packet(PacketType::kAgfwData);
    p.trapdoor = Bytes(64, 1);
    p.body = Bytes(10, 2);
    const auto wire = codec::encode(p);
    for (std::size_t len : {0u, 1u, 5u, 20u, 25u}) {
        EXPECT_FALSE(codec::decode({wire.data(), len}).has_value()) << len;
    }
}

TEST(Codec, RejectsBadType) {
    Bytes wire{0xFF, 0x00, 0x00};
    EXPECT_FALSE(codec::decode(wire).has_value());
}

TEST(Codec, RejectsTrailingGarbageOnFixedTypes) {
    Packet p = base_packet(PacketType::kAgfwAck);
    auto wire = codec::encode(p);
    wire.push_back(0x00);
    EXPECT_FALSE(codec::decode(wire).has_value());
}

TEST(Codec, RejectsOverlongInnerLength) {
    Packet p = base_packet(PacketType::kAgfwData);
    p.trapdoor = Bytes(64, 1);
    auto wire = codec::encode(p);
    // Inflate the trapdoor length field beyond the frame: offset of the u16
    // is 1 type + 1 flags + 16 loc + 6 n = 24.
    wire[24] = 0xFF;
    wire[25] = 0xFF;
    EXPECT_FALSE(codec::decode(wire).has_value());
}

// --------------------------------------------------------------- fuzzing

TEST(Codec, RandomBytesNeverCrashDecode) {
    // Property: decode() is total — arbitrary input yields nullopt or a
    // packet, never UB/crash. (ASAN-friendly smoke fuzz.)
    util::Rng rng(20260706);
    for (int i = 0; i < 20000; ++i) {
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 200));
        Bytes junk(len);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
        const auto out = codec::decode(junk);
        if (out) {
            EXPECT_LE(out->wire_bytes, len);
        }
    }
}

TEST(Codec, MutatedValidPacketsNeverCrashDecode) {
    util::Rng rng(77);
    Packet p = base_packet(PacketType::kAgfwData);
    p.dst_loc = {100, 100};
    p.next_hop_pseudonym = 0xABCDEF;
    p.trapdoor = Bytes(64, 0x5A);
    p.body = Bytes(32, 0x33);
    const Bytes wire = codec::encode(p);
    for (int i = 0; i < 5000; ++i) {
        Bytes mutated = wire;
        const int flips = static_cast<int>(rng.uniform_int(1, 4));
        for (int f = 0; f < flips; ++f) {
            const auto pos = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
            mutated[pos] = static_cast<std::uint8_t>(rng.next_u64());
        }
        (void)codec::decode(mutated);  // must not crash; result may be anything
    }
}

TEST(Codec, RoundTripIsIdempotentAcrossAllTypes) {
    // encode(decode(encode(p))) == encode(p) for representative packets.
    std::vector<Packet> packets;
    {
        Packet p = base_packet(PacketType::kGpsrHello);
        p.src_id = 3;
        p.hello_loc = {9, 9};
        packets.push_back(p);
    }
    {
        Packet p = base_packet(PacketType::kAgfwData);
        p.trapdoor = Bytes(64, 1);
        p.body = Bytes(10, 2);
        p.perimeter_mode = true;
        p.perimeter_entry = {1, 2};
        p.prev_hop_loc = {3, 4};
        packets.push_back(p);
    }
    {
        Packet p = base_packet(PacketType::kLocRequest);
        p.ls_index = Bytes(16, 7);
        p.ls_query_id = 5;
        packets.push_back(p);
    }
    {
        Packet p = base_packet(PacketType::kAgfwAck);
        p.ack_uids = {1, 2, 3};
        packets.push_back(p);
    }
    {
        Packet p = base_packet(PacketType::kLocDigest);
        p.grid = 2;
        p.ls_digest = {{0xAA, 1'000'000'000ULL}, {0xBB, 2'000'000'000ULL}};
        packets.push_back(p);
    }
    for (const Packet& p : packets) {
        const Bytes once = codec::encode(p);
        const auto back = codec::decode(once);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(codec::encode(*back), once);
    }
}

// -------------------------------------- live-traffic accounting consistency

TEST(Codec, LiveTrafficWireBytesMatchEncoding) {
    // Snoop a short mixed scenario and verify that every transmitted packet's
    // accounted wire_bytes equals its canonical encoding (modulo the
    // full-certificate hello variant, which is accounted on top).
    for (workload::Scheme scheme : {workload::Scheme::kGpsrGreedy,
                                    workload::Scheme::kAgfwAck}) {
        workload::ScenarioConfig cfg;
        cfg.scheme = scheme;
        cfg.num_nodes = 30;
        cfg.sim_seconds = 30.0;
        cfg.traffic_stop_s = 25.0;
        cfg.seed = 13;
        cfg.location_service = routing::LocationService::Mode::kPlain;
        if (scheme == workload::Scheme::kAgfwAck)
            cfg.location_service = routing::LocationService::Mode::kAnonymous;
        cfg.agfw.enable_perimeter = true;  // exercise the perimeter header too
        workload::ScenarioRunner runner(cfg);
        runner.setup();

        std::uint64_t checked = 0, mismatched = 0;
        runner.network().channel().set_snoop(
            [&](const phy::Frame& f, const util::Vec2&) {
                if (!f.payload) return;
                ++checked;
                if (codec::encoded_size(*f.payload) != f.payload->wire_bytes)
                    ++mismatched;
            });
        runner.network().start_agents();
        runner.network().sim().run_until(SimTime::seconds(cfg.sim_seconds));

        EXPECT_GT(checked, 1000u) << workload::scheme_name(scheme);
        EXPECT_EQ(mismatched, 0u) << workload::scheme_name(scheme);
    }
}

}  // namespace
