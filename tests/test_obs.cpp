#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/json.hpp"
#include "experiment/sweep.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using obs::DropCause;
using obs::Event;
using obs::EventType;
using util::SimTime;

// ---------------------------------------------------------------- recorder

TEST(TraceRecorder, AssignsMonotonicIdsAndTimestamps) {
    obs::TraceRecorder rec;
    rec.record(SimTime::millis(1), Event{.type = EventType::kAppSend, .node = 3});
    rec.record(SimTime::millis(2), Event{.type = EventType::kNetDeliver, .node = 4});
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].id, 1u);
    EXPECT_EQ(events[1].id, 2u);
    EXPECT_EQ(events[0].t, SimTime::millis(1));
    EXPECT_EQ(rec.recorded(), 2u);
    EXPECT_EQ(rec.evicted(), 0u);
}

TEST(TraceRecorder, RingEvictsOldestPerShardButIdsStayStable) {
    obs::TraceParams p;
    p.shard_capacity = 4;
    obs::TraceRecorder rec(p);
    // 10 events on node 1, interleaved with 2 on node 2: node 1's shard
    // keeps its newest 4; node 2 is untouched by node 1's pressure.
    for (std::uint32_t i = 0; i < 10; ++i)
        rec.record(SimTime::millis(i), Event{.type = EventType::kPhyTx, .node = 1, .seq = i});
    rec.record(SimTime::millis(100), Event{.type = EventType::kPhyRx, .node = 2});
    rec.record(SimTime::millis(101), Event{.type = EventType::kPhyRx, .node = 2});

    const auto events = rec.events();
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(rec.recorded(), 12u);
    EXPECT_EQ(rec.evicted(), 6u);
    // Sorted by id = record order; node 1's survivors are seq 6..9.
    EXPECT_EQ(events[0].seq, 6u);
    EXPECT_EQ(events[3].seq, 9u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].id, events[i].id);
}

TEST(TraceRecorder, DisabledRecorderDropsEverything) {
    obs::TraceRecorder rec;
    rec.set_enabled(false);
    rec.record(SimTime::millis(1), Event{.type = EventType::kAppSend});
    EXPECT_EQ(rec.recorded(), 0u);
    EXPECT_TRUE(rec.events().empty());
}

TEST(TraceNames, RoundTripEveryEnumerator) {
    for (const EventType t : obs::kAllEventTypes) {
        EventType back{};
        ASSERT_TRUE(obs::event_type_from_name(obs::event_type_name(t), back))
            << obs::event_type_name(t);
        EXPECT_EQ(back, t);
    }
    for (const DropCause c : obs::kAllDropCauses) {
        DropCause back{};
        ASSERT_TRUE(obs::drop_cause_from_name(obs::drop_cause_name(c), back));
        EXPECT_EQ(back, c);
    }
    EventType t{};
    EXPECT_FALSE(obs::event_type_from_name("not_an_event", t));
}

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, CountersGaugesHistograms) {
    obs::MetricsRegistry reg;
    reg.add("mac.retries", 3);
    reg.add("mac.retries", 2);
    reg.set_gauge("phy.range_m", 250.0);
    for (int i = 1; i <= 100; ++i) reg.observe("app.latency_ms", i);

    EXPECT_EQ(reg.counter("mac.retries"), 5u);
    EXPECT_EQ(reg.counter("never.touched"), 0u);

    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("mac.retries"), 5u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 250.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 100u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 50.0);
    EXPECT_DOUBLE_EQ(snap.histograms[0].min, 1.0);
    EXPECT_DOUBLE_EQ(snap.histograms[0].max, 100.0);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
    obs::MetricsRegistry reg;
    reg.add("zeta", 1);
    reg.add("alpha", 1);
    reg.add("mid", 1);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[2].first, "zeta");
}

// ---------------------------------------------------------------- flights

TEST(FlightIndex, DeliveredFlightBuildsHopChain) {
    std::vector<Event> ev;
    auto push = [&](EventType t, net::NodeId node, std::uint64_t uid) {
        Event e{.type = t, .node = node, .uid = uid};
        e.id = ev.size() + 1;
        e.t = SimTime::millis(static_cast<std::int64_t>(ev.size()));
        ev.push_back(e);
    };
    push(EventType::kAppSend, 1, 42);
    push(EventType::kNetForward, 1, 42);  // duplicate custody at origin collapses
    push(EventType::kNetForward, 2, 42);
    push(EventType::kNetDeliver, 3, 42);

    const obs::FlightIndex index(ev);
    const obs::Flight* f = index.find(42);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->status, obs::Flight::Status::kDelivered);
    EXPECT_TRUE(f->is_data);
    EXPECT_EQ(f->origin, 1u);
    EXPECT_EQ(f->end_node, 3u);
    EXPECT_EQ(f->hop_chain, (std::vector<net::NodeId>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(f->latency_ms(), 3.0);
}

TEST(FlightIndex, DerivesCauseForSilentFlights) {
    // Three flights with no terminal event: last custody decides the cause.
    std::vector<Event> ev;
    std::uint64_t id = 0;
    auto push = [&](EventType t, std::uint64_t uid) {
        Event e{.type = t, .node = 1, .uid = uid};
        e.id = ++id;
        ev.push_back(e);
    };
    push(EventType::kAppSend, 1);
    push(EventType::kNetForward, 1);  // committed, nobody took custody
    push(EventType::kAppSend, 2);
    push(EventType::kLastAttempt, 2);  // final broadcast, no trapdoor
    push(EventType::kAppSend, 3);
    push(EventType::kNetStuck, 3);  // relay had no next hop

    const obs::FlightIndex index(ev);
    EXPECT_EQ(index.find(1)->cause, DropCause::kNextHopSilent);
    EXPECT_EQ(index.find(2)->cause, DropCause::kLastAttemptUnanswered);
    EXPECT_EQ(index.find(3)->cause, DropCause::kRelayStuck);
    for (const auto* f : index.undelivered_data())
        EXPECT_EQ(f->status, obs::Flight::Status::kDropped);
    EXPECT_EQ(index.undelivered_data().size(), 3u);
}

TEST(FlightIndex, ExplicitDropBeatsDerivedCause) {
    std::vector<Event> ev;
    Event a{.type = EventType::kAppSend, .node = 1, .uid = 9};
    a.id = 1;
    Event b{.type = EventType::kNetDrop, .cause = DropCause::kNoRoute, .node = 2, .uid = 9};
    b.id = 2;
    ev.push_back(a);
    ev.push_back(b);
    const obs::FlightIndex index(ev);
    EXPECT_EQ(index.find(9)->cause, DropCause::kNoRoute);
    EXPECT_EQ(index.find(9)->status, obs::Flight::Status::kDropped);
}

// ------------------------------------------------------- scenario integration

workload::ScenarioConfig traced_agfw_config() {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 50;
    cfg.sim_seconds = 30.0;
    cfg.traffic_stop_s = 25.0;
    cfg.seed = 7;
    cfg.check_invariants = false;
    cfg.trace.enabled = true;
    cfg.trace.shard_capacity = 1 << 16;  // large enough that nothing evicts
    return cfg;
}

TEST(TraceScenario, EveryUndeliveredPacketHasCauseAndHopChain) {
    workload::ScenarioRunner runner(traced_agfw_config());
    const workload::ScenarioResult r = runner.run();
    ASSERT_NE(runner.trace_recorder(), nullptr);
    ASSERT_EQ(runner.trace_recorder()->evicted(), 0u);

    const obs::FlightIndex index(runner.trace_recorder()->events());
    std::size_t data = 0, delivered = 0;
    for (const obs::Flight& f : index.flights()) {
        if (!f.is_data) continue;
        ++data;
        if (f.status == obs::Flight::Status::kDelivered) ++delivered;
    }
    EXPECT_EQ(data, r.app_sent);
    // Delivered flights = unique delivered uids = unique (flow, seq).
    EXPECT_EQ(delivered, r.app_delivered);

    const auto lost = index.undelivered_data();
    EXPECT_EQ(lost.size(), data - delivered);
    for (const obs::Flight* f : lost) {
        EXPECT_NE(f->cause, DropCause::kNone) << "uid " << f->uid;
        EXPECT_FALSE(f->hop_chain.empty()) << "uid " << f->uid;
        EXPECT_NE(f->end_node, net::kInvalidNode) << "uid " << f->uid;
    }
}

TEST(TraceScenario, MetricsSnapshotMatchesLegacyFields) {
    workload::ScenarioRunner runner(traced_agfw_config());
    const workload::ScenarioResult r = runner.run();
    // Legacy fields are derived from the registry; spot-check the mapping.
    EXPECT_EQ(r.app_sent, r.metrics.counter("app.sent"));
    EXPECT_EQ(r.app_delivered, r.metrics.counter("app.delivered"));
    EXPECT_EQ(r.mac_retries, r.metrics.counter("mac.retries"));
    EXPECT_EQ(r.transmissions, r.metrics.counter("phy.transmissions"));
    EXPECT_EQ(r.acks_sent, r.metrics.counter("agfw.acks_sent"));
    EXPECT_EQ(r.hello_sent, r.metrics.counter("agfw.hello_sent"));
    EXPECT_GT(r.metrics.counter("trace.recorded"), 0u);
}

TEST(TraceScenario, TracingDoesNotPerturbTheRun) {
    workload::ScenarioConfig cfg = traced_agfw_config();
    workload::ScenarioRunner traced(cfg);
    const workload::ScenarioResult a = traced.run();

    cfg.trace.enabled = false;
    workload::ScenarioRunner untraced(cfg);
    const workload::ScenarioResult b = untraced.run();

    EXPECT_EQ(a.app_sent, b.app_sent);
    EXPECT_EQ(a.app_delivered, b.app_delivered);
    EXPECT_EQ(a.transmissions, b.transmissions);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_DOUBLE_EQ(a.avg_latency_ms, b.avg_latency_ms);
}

// ---------------------------------------------------------------- export

TEST(TraceExport, ByteIdenticalAcrossRepeatedRuns) {
    workload::ScenarioRunner a(traced_agfw_config());
    a.run();
    workload::ScenarioRunner b(traced_agfw_config());
    b.run();
    const std::string ja = a.chrome_trace_json();
    const std::string jb = b.chrome_trace_json();
    ASSERT_FALSE(ja.empty());
    EXPECT_EQ(ja, jb);
}

TEST(TraceExport, RoundTripsThroughTheReader) {
    workload::ScenarioRunner runner(traced_agfw_config());
    runner.run();
    const std::string json = runner.chrome_trace_json();

    obs::LoadedTrace loaded;
    std::string error;
    ASSERT_TRUE(obs::load_chrome_trace(json, loaded, error)) << error;
    EXPECT_EQ(loaded.meta.scheme, "agfw-ack");
    EXPECT_EQ(loaded.meta.seed, 7u);

    const auto original = runner.trace_recorder()->events();
    ASSERT_EQ(loaded.events.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.events[i].id, original[i].id);
        EXPECT_EQ(loaded.events[i].type, original[i].type);
        EXPECT_EQ(loaded.events[i].cause, original[i].cause);
        EXPECT_EQ(loaded.events[i].node, original[i].node);
        EXPECT_EQ(loaded.events[i].uid, original[i].uid);
        EXPECT_EQ(loaded.events[i].detail, original[i].detail);
    }
    // Flight reconstruction from the decoded file matches the in-memory one.
    const obs::FlightIndex from_file(loaded.events);
    const obs::FlightIndex from_memory(original);
    EXPECT_EQ(from_file.undelivered_data().size(), from_memory.undelivered_data().size());
}

TEST(TraceExport, FrameLogListsPhyEvents) {
    obs::TraceRecorder rec;
    rec.record(SimTime::millis(5), Event{.type = EventType::kPhyTx, .node = 1, .bytes = 64});
    rec.record(SimTime::millis(6), Event{.type = EventType::kPhyRx, .node = 2, .bytes = 64});
    rec.record(SimTime::millis(7), Event{.type = EventType::kAppSend, .node = 1});
    const std::string log = obs::to_frame_log(rec.events());
    EXPECT_NE(log.find("TX"), std::string::npos);
    EXPECT_NE(log.find("RX"), std::string::npos);
    // Non-phy events are not frames and stay out of the pcap-like log.
    EXPECT_EQ(log.find("app_send"), std::string::npos);
}

TEST(TraceRead, RejectsMalformedInput) {
    obs::LoadedTrace out;
    std::string error;
    EXPECT_FALSE(obs::load_chrome_trace("not json at all", out, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::load_chrome_trace("{\"traceEvents\":[]}", out, error));
    // Schema check: a valid JSON document with an unknown event name fails.
    const std::string bad =
        "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"scheme\":\"x\",\"seed\":1,"
        "\"num_nodes\":1,\"sim_seconds\":1,\"recorded\":1,\"evicted\":0},"
        "\"traceEvents\":[{\"name\":\"bogus_event\",\"cat\":\"net\",\"ph\":\"i\","
        "\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{}}]}";
    EXPECT_FALSE(obs::load_chrome_trace(bad, out, error));
    EXPECT_NE(error.find("traceEvents[0]"), std::string::npos);
}

// ---------------------------------------------------------------- sweep

std::string slurp(const std::filesystem::path& p) {
    std::ifstream f(p, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

TEST(TraceSweep, ArtifactsAreByteIdenticalForAnyJobs) {
    experiment::SweepSpec spec;
    spec.base.num_nodes = 20;
    spec.base.sim_seconds = 10.0;
    spec.base.traffic_stop_s = 9.0;
    spec.base.num_flows = 6;
    spec.base.num_senders = 4;
    spec.base.check_invariants = false;
    spec.axes.push_back(experiment::Axis::schemes(
        {workload::Scheme::kGpsrGreedy, workload::Scheme::kAgfwAck}));
    spec.seeds_per_point = 2;

    const auto base = std::filesystem::temp_directory_path() / "geoanon_trace_sweep";
    std::filesystem::remove_all(base);
    experiment::SweepRunner::Options o1;
    o1.jobs = 1;
    o1.trace_dir = (base / "j1").string();
    experiment::SweepRunner::Options o4;
    o4.jobs = 4;
    o4.trace_dir = (base / "j4").string();

    const auto p1 = experiment::SweepRunner(spec, o1).run();
    const auto p4 = experiment::SweepRunner(spec, o4).run();
    // Merged sweep JSON is byte-identical, traces and all.
    EXPECT_EQ(experiment::sweep_to_json("t", spec, p1),
              experiment::sweep_to_json("t", spec, p4));

    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(base / "j1")) {
        ++files;
        const auto other = base / "j4" / entry.path().filename();
        ASSERT_TRUE(std::filesystem::exists(other)) << other;
        EXPECT_EQ(slurp(entry.path()), slurp(other)) << entry.path();
    }
    EXPECT_EQ(files, spec.num_runs());
    std::filesystem::remove_all(base);
}

// ---------------------------------------------------------------- json block

TEST(ResultJson, IncludesMetricsBlock) {
    workload::ScenarioConfig cfg = traced_agfw_config();
    cfg.num_nodes = 20;
    cfg.sim_seconds = 10.0;
    cfg.traffic_stop_s = 9.0;
    workload::ScenarioRunner runner(cfg);
    const std::string json = experiment::result_to_json(runner.run());
    EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
    EXPECT_NE(json.find("\"app.latency_ms\":{\"count\":"), std::string::npos);
    EXPECT_NE(json.find("\"agfw.forwarded\":"), std::string::npos);
}

}  // namespace
