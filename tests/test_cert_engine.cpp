#include <gtest/gtest.h>

#include <set>

#include "crypto/cert.hpp"
#include "crypto/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace geoanon::crypto;
using geoanon::util::Bytes;
using geoanon::util::ByteReader;
using geoanon::util::Rng;

// ----------------------------------------------------------------- CA/certs

TEST(CertificateAuthority, IssueAndVerify) {
    Rng rng(1);
    CertificateAuthority ca(rng, 256);
    const RsaKeyPair subject = rsa_generate(rng, 256);
    const Certificate cert = ca.issue(42, subject.pub);
    EXPECT_EQ(cert.subject_id, 42u);
    EXPECT_TRUE(ca.verify(cert));
}

TEST(CertificateAuthority, RejectsTamperedCert) {
    Rng rng(2);
    CertificateAuthority ca(rng, 256);
    const RsaKeyPair subject = rsa_generate(rng, 256);
    Certificate cert = ca.issue(42, subject.pub);
    cert.subject_id = 43;  // claim someone else's identity
    EXPECT_FALSE(ca.verify(cert));
    Certificate cert2 = ca.issue(42, subject.pub);
    const RsaKeyPair other = rsa_generate(rng, 256);
    cert2.subject_key = other.pub;  // swap the key
    EXPECT_FALSE(ca.verify(cert2));
}

TEST(CertificateAuthority, RejectsForeignCa) {
    Rng rng(3);
    CertificateAuthority ca1(rng, 256), ca2(rng, 256);
    const RsaKeyPair subject = rsa_generate(rng, 256);
    const Certificate cert = ca1.issue(1, subject.pub);
    EXPECT_FALSE(ca2.verify(cert));
}

TEST(Certificate, SerializeRoundTrip) {
    Rng rng(4);
    CertificateAuthority ca(rng, 256);
    const RsaKeyPair subject = rsa_generate(rng, 256);
    const Certificate cert = ca.issue(7, subject.pub);
    const Bytes ser = cert.serialize();
    ByteReader r(ser);
    const auto back = Certificate::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->subject_id, 7u);
    EXPECT_EQ(back->subject_key, subject.pub);
    EXPECT_TRUE(ca.verify(*back));
}

// ------------------------------------------------------------------ engines

template <typename Engine>
class EngineTest : public ::testing::Test {
  protected:
    // 256-bit keys in the real engine for speed; semantics are identical.
    EngineTest() : engine_(12345, 256) {
        engine_.register_node(1);
        engine_.register_node(2);
        engine_.register_node(3);
    }
    Engine engine_;
    Rng rng_{99};
};

using EngineTypes = ::testing::Types<RealCryptoEngine, ModeledCryptoEngine>;
TYPED_TEST_SUITE(EngineTest, EngineTypes);

TYPED_TEST(EngineTest, PseudonymsAre48BitNonZero) {
    for (int i = 0; i < 200; ++i) {
        const Pseudonym n = this->engine_.make_pseudonym(1, this->rng_.next_u64());
        EXPECT_NE(n, kLastAttemptPseudonym);
        EXPECT_LT(n, 1ULL << 48);
    }
}

TYPED_TEST(EngineTest, PseudonymDeterministicInInputs) {
    EXPECT_EQ(this->engine_.make_pseudonym(1, 555), this->engine_.make_pseudonym(1, 555));
    EXPECT_NE(this->engine_.make_pseudonym(1, 555), this->engine_.make_pseudonym(1, 556));
    EXPECT_NE(this->engine_.make_pseudonym(1, 555), this->engine_.make_pseudonym(2, 555));
}

TYPED_TEST(EngineTest, AnonymizeUidIsAnInjectivePrp) {
    // Bijectivity is the whole point: distinct (id, counter) inputs must map
    // to distinct wire uids, or the dedup/ACK machinery breaks.
    std::set<std::uint64_t> seen;
    for (std::uint64_t id = 1; id <= 8; ++id) {
        for (std::uint64_t ctr = 1; ctr <= 64; ++ctr) {
            const std::uint64_t raw = (id << 32) | ctr;
            const std::uint64_t out = this->engine_.anonymize_uid(raw);
            EXPECT_TRUE(seen.insert(out).second) << "collision at " << raw;
        }
    }
    // Deterministic in the engine seed.
    EXPECT_EQ(this->engine_.anonymize_uid(0x2A00000001ull),
              this->engine_.anonymize_uid(0x2A00000001ull));
}

TYPED_TEST(EngineTest, AnonymizeUidHidesTheIdCounterLayout) {
    // The regression GL010 was built around: raw uids carried the source id
    // in the top 32 bits. After the PRP, uids from one source must not share
    // top bits with each other (nor equal the raw input).
    const std::uint64_t id = 42;
    std::set<std::uint64_t> tops;
    for (std::uint64_t ctr = 1; ctr <= 32; ++ctr) {
        const std::uint64_t raw = (id << 32) | ctr;
        const std::uint64_t out = this->engine_.anonymize_uid(raw);
        EXPECT_NE(out, raw);
        tops.insert(out >> 32);
    }
    // 32 same-source uids land on (essentially) 32 distinct top halves; the
    // pre-fix layout would put them all on one.
    EXPECT_GT(tops.size(), 30u);
}

TEST(EngineSeeds, AnonymizeUidKeyedByEngineSeed) {
    ModeledCryptoEngine a(1), b(2);
    EXPECT_NE(a.anonymize_uid(0x2A00000001ull), b.anonymize_uid(0x2A00000001ull));
}

TYPED_TEST(EngineTest, TrapdoorOnlyDestinationOpens) {
    const Bytes payload{'p', 'a', 'y'};
    const Bytes td = this->engine_.make_trapdoor(2, payload, this->rng_);
    EXPECT_EQ(td.size(), this->engine_.trapdoor_bytes());
    EXPECT_EQ(this->engine_.try_open_trapdoor(2, td), payload);
    EXPECT_FALSE(this->engine_.try_open_trapdoor(1, td).has_value());
    EXPECT_FALSE(this->engine_.try_open_trapdoor(3, td).has_value());
}

TYPED_TEST(EngineTest, TrapdoorsAreUnlinkable) {
    // Two trapdoors for the same destination and payload look different.
    const Bytes payload{'x'};
    const Bytes a = this->engine_.make_trapdoor(2, payload, this->rng_);
    const Bytes b = this->engine_.make_trapdoor(2, payload, this->rng_);
    EXPECT_NE(a, b);
}

TYPED_TEST(EngineTest, TrapdoorSizeMatchesPaper) {
    // §5: the trapdoor does not exceed 64 bytes with a 512-bit key. Our test
    // engine uses 256-bit keys -> 32 bytes; the size tracks the modulus.
    EXPECT_EQ(this->engine_.trapdoor_bytes(), 256u / 8);
}

TYPED_TEST(EngineTest, EncryptForRoundTripAndPrivacy) {
    Bytes plaintext(100, 0x42);  // spans multiple RSA blocks
    const Bytes ct = this->engine_.encrypt_for(3, plaintext, this->rng_);
    EXPECT_EQ(this->engine_.try_decrypt(3, ct), plaintext);
    EXPECT_FALSE(this->engine_.try_decrypt(1, ct).has_value());
}

TYPED_TEST(EngineTest, RingSignVerify) {
    const std::vector<NodeIdNum> ring{1, 2, 3};
    const Bytes msg{'m'};
    const Bytes sig = this->engine_.ring_sign_msg(2, ring, msg, this->rng_);
    EXPECT_EQ(sig.size(), this->engine_.ring_signature_bytes(ring.size()));
    EXPECT_TRUE(this->engine_.ring_verify_msg(ring, msg, sig));
    EXPECT_FALSE(this->engine_.ring_verify_msg(ring, Bytes{'M'}, sig));
    const std::vector<NodeIdNum> other_ring{1, 3, 2};
    EXPECT_FALSE(this->engine_.ring_verify_msg(other_ring, msg, sig));
}

TYPED_TEST(EngineTest, AlsIndexDeterministicAndDistinct) {
    const Bytes i1 = this->engine_.als_index(1, 2);
    EXPECT_EQ(i1, this->engine_.als_index(1, 2));
    EXPECT_EQ(i1.size(), CryptoEngine::kAlsIndexBytes);
    EXPECT_NE(i1, this->engine_.als_index(2, 1));
    EXPECT_NE(i1, this->engine_.als_index(1, 3));
}

TYPED_TEST(EngineTest, SizesConsistentAcrossEngines) {
    // The modeled engine must present the same wire sizes as the real one so
    // byte-overhead results are engine-independent.
    EXPECT_EQ(this->engine_.ring_signature_bytes(5),
              4 + (4 + ((256 + 64 + 15) / 16) * 2) + 4 + 5 * (4 + ((256 + 64 + 15) / 16) * 2));
    EXPECT_EQ(this->engine_.certificate_bytes(), 8 + (4 + (4 + 32 + 4 + 3)) + (4 + 32));
}

TEST(RealEngine, CertificatesVerifyAgainstCa) {
    RealCryptoEngine engine(5, 256);
    engine.register_node(9);
    EXPECT_TRUE(engine.ca().verify(engine.certificate_of(9)));
    EXPECT_EQ(engine.certificate_of(9).subject_id, 9u);
}

TEST(RealEngine, RegisterIsIdempotent) {
    RealCryptoEngine engine(6, 256);
    engine.register_node(1);
    const auto fp = engine.keys_of(1).pub.fingerprint();
    engine.register_node(1);
    EXPECT_EQ(engine.keys_of(1).pub.fingerprint(), fp);
}

TEST(RealEngine, Paper512BitTrapdoorFitsBudget) {
    // One full-size check at the paper's parameters: 512-bit RSA, trapdoor
    // <= 64 bytes carrying (src, loc_s, tag_d).
    RealCryptoEngine engine(7, 512);
    engine.register_node(1);
    engine.register_node(2);
    Rng rng(1);
    geoanon::util::ByteWriter payload;
    payload.u64(1);          // src
    payload.f64(123.0);      // loc x
    payload.f64(45.0);       // loc y
    payload.u64(0xC0DE);     // tag
    const Bytes td = engine.make_trapdoor(2, payload.data(), rng);
    EXPECT_LE(td.size(), 64u);
    EXPECT_EQ(engine.try_open_trapdoor(2, td), payload.data());
    EXPECT_FALSE(engine.try_open_trapdoor(1, td).has_value());
}

TEST(CryptoCosts, PaperDefaults) {
    CryptoCosts costs;
    EXPECT_EQ(costs.pk_encrypt, geoanon::util::SimTime::micros(500));
    EXPECT_EQ(costs.pk_decrypt, geoanon::util::SimTime::micros(8500));
    // Ring cost model: sign = 1 private + (m-1) public ops.
    EXPECT_GT(costs.ring_sign(5), costs.pk_decrypt);
    EXPECT_GT(costs.ring_verify(5), costs.ring_verify(2));
}

}  // namespace
