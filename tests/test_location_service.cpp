#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/agfw.hpp"
#include "crypto/engine.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"
#include "routing/gpsr.hpp"
#include "routing/location_service.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using core::AgfwAgent;
using net::NodeId;
using net::Packet;
using routing::GpsrGreedyAgent;
using routing::GridMap;
using routing::LocationService;
using util::SimTime;
using util::Vec2;

// ---------------------------------------------------------------- GridMap

TEST(GridMap, PartitionGeometry) {
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    EXPECT_EQ(grid.grid_count(), 5u);
    EXPECT_EQ(grid.grid_of({0, 0}), 0u);
    EXPECT_EQ(grid.grid_of({1499, 299}), 4u);
    EXPECT_EQ(grid.grid_of({450, 100}), 1u);
    EXPECT_EQ(grid.center_of(0), (Vec2{150, 150}));
    EXPECT_EQ(grid.center_of(4), (Vec2{1350, 150}));
    EXPECT_TRUE(grid.contains(1, {450, 100}));
    EXPECT_FALSE(grid.contains(0, {450, 100}));
}

TEST(GridMap, OutOfAreaPointsClamp) {
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    EXPECT_EQ(grid.grid_of({-50, -50}), 0u);
    EXPECT_EQ(grid.grid_of({99999, 99999}), 4u);
}

TEST(GridMap, HomeGridDeterministicAndSpread) {
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    std::vector<int> counts(grid.grid_count(), 0);
    for (std::uint64_t id = 0; id < 500; ++id) {
        EXPECT_EQ(grid.home_grid(id), grid.home_grid(id));
        EXPECT_LT(grid.home_grid(id), grid.grid_count());
        ++counts[grid.home_grid(id)];
    }
    for (int c : counts) EXPECT_GT(c, 50);  // roughly uniform over 5 grids
}

TEST(GridMap, TwoDimensionalGrids) {
    const GridMap grid(mobility::Area{600, 600}, 300.0);
    EXPECT_EQ(grid.grid_count(), 4u);
    EXPECT_EQ(grid.grid_of({100, 100}), 0u);
    EXPECT_EQ(grid.grid_of({400, 100}), 1u);
    EXPECT_EQ(grid.grid_of({100, 400}), 2u);
    EXPECT_EQ(grid.grid_of({400, 400}), 3u);
}

// ----------------------------------------------------- end-to-end fixtures

/// Dense static AGFW network covering the whole 1500x300 strip so every grid
/// has nodes near its center.
struct AlsNet {
    explicit AlsNet(LocationService::Mode mode, AgfwAgent::Params params = {})
        : network(phy::PhyParams{}, 23) {
        engine = std::make_unique<crypto::ModeledCryptoEngine>(5, 512);
        // Grid of nodes: x = 75..1425 step 150, y in {75, 225}.
        std::vector<Vec2> positions;
        for (int xi = 0; xi < 10; ++xi)
            for (int yi = 0; yi < 2; ++yi)
                positions.push_back(Vec2{75.0 + xi * 150.0, 75.0 + yi * 150.0});

        std::vector<crypto::NodeIdNum> universe;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            engine->register_node(i);
            universe.push_back(i);
        }
        mac::MacParams mp;
        mp.use_rtscts = false;
        mp.anonymous_source = true;

        const GridMap grid(mobility::Area{1500, 300}, 300.0);
        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mp);
            auto agent = std::make_unique<AgfwAgent>(
                node, params, *engine, universe,
                [](NodeId) -> std::optional<Vec2> { return std::nullopt; },
                [this](NodeId at, const Packet& pkt) {
                    deliveries.emplace_back(at, pkt);
                });
            // Everyone anticipates everyone (tests query arbitrary pairs).
            std::vector<NodeId> contacts;
            for (std::size_t c = 0; c < positions.size(); ++c)
                if (c != node.id()) contacts.push_back(static_cast<NodeId>(c));
            agent->enable_location_service(mode, grid, ls_params, contacts);
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
    }

    void run_until(double seconds) { network.sim().run_until(SimTime::seconds(seconds)); }

    LocationService::Params ls_params{};
    net::Network network;
    std::unique_ptr<crypto::CryptoEngine> engine;
    std::vector<AgfwAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
};

TEST(Als, AnonymousResolveSucceeds) {
    AlsNet net(LocationService::Mode::kAnonymous);
    net.run_until(20.0);  // updates out

    std::optional<Vec2> resolved;
    bool called = false;
    net.agents[0]->location_service()->resolve(15, [&](std::optional<Vec2> loc) {
        called = true;
        resolved = loc;
    });
    net.run_until(30.0);
    ASSERT_TRUE(called);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_NEAR(resolved->x, net.network.true_position(15).x, 1.0);
    EXPECT_NEAR(resolved->y, net.network.true_position(15).y, 1.0);
}

TEST(Als, ResolveDrivesEndToEndData) {
    AlsNet net(LocationService::Mode::kAnonymous);
    net.run_until(20.0);
    net.agents[0]->send_data(15, 0, 0, {1, 2});
    net.run_until(35.0);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 15u);
}

TEST(Als, IndexFreeVariantResolves) {
    AlsNet net(LocationService::Mode::kAnonymousIndexFree);
    net.run_until(20.0);
    std::optional<Vec2> resolved;
    net.agents[2]->location_service()->resolve(17, [&](auto loc) { resolved = loc; });
    net.run_until(30.0);
    ASSERT_TRUE(resolved.has_value());
    // The index-free requester had to trial-decrypt server rows.
    EXPECT_GE(net.agents[2]->location_service()->stats().decrypt_attempts, 1u);
}

TEST(Als, UnknownTargetFailsCleanly) {
    AlsNet net(LocationService::Mode::kAnonymous);
    net.run_until(20.0);
    // Node 5 never anticipated node 0 querying it? It did (contacts = all);
    // instead query an identity that does not exist in the network.
    bool called = false;
    std::optional<Vec2> resolved;
    net.agents[0]->location_service()->resolve(9999, [&](auto loc) {
        called = true;
        resolved = loc;
    });
    net.run_until(45.0);  // worst-case full-ladder failure is ~22.5 s
    EXPECT_TRUE(called);
    EXPECT_FALSE(resolved.has_value());
}

TEST(Als, UpdatesAreStoredEncrypted) {
    AlsNet net(LocationService::Mode::kAnonymous);
    net.run_until(20.0);
    std::size_t total_rows = 0;
    for (auto* a : net.agents) total_rows += a->location_service()->store_size();
    EXPECT_GT(total_rows, 0u);
    // No plaintext identity travels in ALS messages: checked by the snoop in
    // test_adversary; here check byte accounting exists.
    std::uint64_t update_bytes = 0;
    for (auto* a : net.agents) update_bytes += a->location_service()->stats().update_bytes;
    EXPECT_GT(update_bytes, 0u);
}

TEST(Als, AnonymousCostsMoreBytesThanPlainDlm) {
    // §3.3/§5: ALS trades bytes for anonymity. Compare per-update sizes.
    AlsNet anon(LocationService::Mode::kAnonymous);
    anon.run_until(25.0);
    std::uint64_t anon_updates = 0, anon_bytes = 0;
    for (auto* a : anon.agents) {
        anon_updates += a->location_service()->stats().updates_sent;
        anon_bytes += a->location_service()->stats().update_bytes;
    }
    ASSERT_GT(anon_updates, 0u);

    // Plain DLM on a GPSR network of the same shape.
    net::Network network(phy::PhyParams{}, 23);
    std::vector<GpsrGreedyAgent*> agents;
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    for (int xi = 0; xi < 10; ++xi) {
        for (int yi = 0; yi < 2; ++yi) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(
                    Vec2{75.0 + xi * 150.0, 75.0 + yi * 150.0}),
                mac::MacParams{});
            auto agent = std::make_unique<GpsrGreedyAgent>(
                node, GpsrGreedyAgent::Params{},
                [](NodeId) -> std::optional<Vec2> { return std::nullopt; },
                nullptr);
            agent->enable_location_service(grid, LocationService::Params{});
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
    }
    network.start_agents();
    network.sim().run_until(SimTime::seconds(25));
    std::uint64_t plain_updates = 0, plain_bytes = 0;
    for (auto* a : agents) {
        plain_updates += a->location_service()->stats().updates_sent;
        plain_bytes += a->location_service()->stats().update_bytes;
    }
    ASSERT_GT(plain_updates, 0u);

    const double anon_per = static_cast<double>(anon_bytes) / anon_updates;
    const double plain_per = static_cast<double>(plain_bytes) / plain_updates;
    EXPECT_GT(anon_per, plain_per);
}

TEST(Dlm, PlainResolveSucceedsOnGpsr) {
    net::Network network(phy::PhyParams{}, 29);
    std::vector<GpsrGreedyAgent*> agents;
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    for (int xi = 0; xi < 10; ++xi) {
        for (int yi = 0; yi < 2; ++yi) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(
                    Vec2{75.0 + xi * 150.0, 75.0 + yi * 150.0}),
                mac::MacParams{});
            auto agent = std::make_unique<GpsrGreedyAgent>(
                node, GpsrGreedyAgent::Params{},
                [](NodeId) -> std::optional<Vec2> { return std::nullopt; },
                nullptr);
            agent->enable_location_service(grid, LocationService::Params{});
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
    }
    network.start_agents();
    network.sim().run_until(SimTime::seconds(20));

    std::optional<Vec2> resolved;
    agents[0]->location_service()->resolve(13, [&](auto loc) { resolved = loc; });
    network.sim().run_until(SimTime::seconds(30));
    ASSERT_TRUE(resolved.has_value());
    EXPECT_NEAR(resolved->x, network.true_position(13).x, 1.0);
}

TEST(Als, HeterogeneousPlainAndAnonymousCoexist) {
    // §3.3: "a node may not need to hide its identity or location all the
    // time ... it can switch to a normal location service". Build an AGFW
    // network where even-numbered nodes run plain DLM updates (privacy off)
    // and odd-numbered nodes run anonymous ALS; servers store both row
    // formats and both resolve.
    net::Network network(phy::PhyParams{}, 67);
    crypto::ModeledCryptoEngine engine(5, 512);
    std::vector<Vec2> positions;
    for (int xi = 0; xi < 10; ++xi)
        for (int yi = 0; yi < 2; ++yi)
            positions.push_back(Vec2{75.0 + xi * 150.0, 75.0 + yi * 150.0});
    std::vector<crypto::NodeIdNum> universe;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        engine.register_node(i);
        universe.push_back(i);
    }
    mac::MacParams mp;
    mp.use_rtscts = false;
    mp.anonymous_source = true;
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    std::vector<AgfwAgent*> agents;
    for (const Vec2& pos : positions) {
        net::Node& node = network.add_node(
            std::make_unique<mobility::StationaryMobility>(pos), mp);
        auto agent = std::make_unique<AgfwAgent>(
            node, AgfwAgent::Params{}, engine, universe,
            [](NodeId) -> std::optional<Vec2> { return std::nullopt; }, nullptr);
        std::vector<NodeId> contacts;
        for (std::size_t c = 0; c < positions.size(); ++c)
            if (c != node.id()) contacts.push_back(static_cast<NodeId>(c));
        const bool privacy = node.id() % 2 == 1;
        agent->enable_location_service(privacy
                                           ? LocationService::Mode::kAnonymous
                                           : LocationService::Mode::kPlain,
                                       grid, LocationService::Params{}, contacts);
        agents.push_back(agent.get());
        node.set_agent(std::move(agent));
    }
    network.start_agents();
    network.sim().run_until(SimTime::seconds(20));

    // An anonymous node resolves a plain node and vice versa.
    std::optional<Vec2> plain_target, anon_target;
    agents[1]->location_service()->resolve(14, [&](auto loc) { plain_target = loc; });
    agents[2]->location_service()->resolve(15, [&](auto loc) { anon_target = loc; });
    // The cross-format resolves walk the degradation ladder (indexed →
    // index-free → plain subject, with backoff), so give them the worst-case
    // ladder time (~22.5 s after issue) before asserting.
    network.sim().run_until(SimTime::seconds(45));
    ASSERT_TRUE(plain_target.has_value());   // even target: plain row
    ASSERT_TRUE(anon_target.has_value());    // odd target: anonymous row
    EXPECT_NEAR(plain_target->x, network.true_position(14).x, 1.0);
    EXPECT_NEAR(anon_target->x, network.true_position(15).x, 1.0);
}

TEST(Dlm, QueryTimesOutWhenServersEmpty) {
    // Query immediately at t=0, before any update: must fail after
    // query_timeout * (retries + 1).
    net::Network network(phy::PhyParams{}, 31);
    std::vector<GpsrGreedyAgent*> agents;
    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    for (int xi = 0; xi < 10; ++xi) {
        net::Node& node = network.add_node(
            std::make_unique<mobility::StationaryMobility>(Vec2{75.0 + xi * 150.0, 150.0}),
            mac::MacParams{});
        auto agent = std::make_unique<GpsrGreedyAgent>(
            node, GpsrGreedyAgent::Params{},
            [](NodeId) -> std::optional<Vec2> { return std::nullopt; }, nullptr);
        agent->enable_location_service(grid, LocationService::Params{});
        agents.push_back(agent.get());
        node.set_agent(std::move(agent));
    }
    network.start_agents();
    bool called = false;
    std::optional<Vec2> resolved = Vec2{1, 1};
    agents[0]->location_service()->resolve(5, [&](auto loc) {
        called = true;
        resolved = loc;
    });
    network.sim().run_until(SimTime::seconds(1.0));
    EXPECT_FALSE(called);  // still retrying
    network.sim().run_until(SimTime::seconds(10.0));
    EXPECT_TRUE(called);
    EXPECT_FALSE(resolved.has_value());
}

// ------------------------------------------ query-timeout / failover paths

/// Line topology placed relative to the target's home-grid center C so the
/// server role is fully controlled:
///
///   Q (requester)  C+(-400, 40)      node 0
///   relay          C+(-300, 0)       node 1
///   relay          C+(-200, 10)      node 2
///   R (replica)    C+(-100, 0)       node 3
///   S (server)     C                 node 4   — the only node within
///                                               server_radius (60 m) of C
///   T (target)     C+(-400, 0)       node 5
///
/// T's updates route T→2→3→4; S stores the row and (when replication is on)
/// its one-hop replicate reaches R. update_interval is huge so exactly one
/// update round happens and the fault timing stays deterministic.
struct FailoverRig {
    explicit FailoverRig(LocationService::Params lsp)
        : network(phy::PhyParams{}, 41) {
        engine = std::make_unique<crypto::ModeledCryptoEngine>(5, 512);
        const GridMap grid(mobility::Area{1500, 300}, 300.0);
        const Vec2 c = grid.center_of(grid.home_grid(5));
        const std::vector<Vec2> positions = {
            c + Vec2{-400, 40}, c + Vec2{-300, 0}, c + Vec2{-200, 10},
            c + Vec2{-100, 0},  c + Vec2{0, 0},    c + Vec2{-400, 0}};

        std::vector<crypto::NodeIdNum> universe;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            engine->register_node(i);
            universe.push_back(i);
        }
        mac::MacParams mp;
        mp.use_rtscts = false;
        mp.anonymous_source = true;
        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mp);
            auto agent = std::make_unique<AgfwAgent>(
                node, AgfwAgent::Params{}, *engine, universe,
                [](NodeId) -> std::optional<Vec2> { return std::nullopt; }, nullptr);
            // Only the target beacons updates, anticipating requester Q.
            const std::vector<NodeId> contacts =
                node.id() == 5 ? std::vector<NodeId>{0} : std::vector<NodeId>{};
            agent->enable_location_service(LocationService::Mode::kAnonymous, grid,
                                           lsp, contacts);
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
    }

    std::uint64_t total_replies_sent() const {
        std::uint64_t n = 0;
        for (auto* a : agents) n += a->location_service()->stats().replies_sent;
        return n;
    }

    void run_until(double seconds) {
        network.sim().run_until(SimTime::seconds(seconds));
    }

    net::Network network;
    std::unique_ptr<crypto::CryptoEngine> engine;
    std::vector<AgfwAgent*> agents;
};

LocationService::Params one_shot_update_params() {
    LocationService::Params lsp;
    lsp.update_interval = SimTime::seconds(1000.0);  // exactly one round
    lsp.server_radius_m = 60.0;
    return lsp;
}

TEST(Als, LostRepliesReissueQueryThenFail) {
    // Replies vanish in the network but the server grid is healthy: the
    // requester must re-issue on timeout and eventually fail — while the
    // server-side reply counter shows the grid did answer.
    FailoverRig rig(one_shot_update_params());
    rig.run_until(10.0);  // the single update round is stored by now
    rig.network.channel().set_drop_model(
        [](const phy::Frame& f, const Vec2&, const Vec2&) {
            return f.payload && f.payload->type == net::PacketType::kLocReply;
        });

    bool called = false;
    std::optional<Vec2> resolved;
    rig.agents[0]->location_service()->resolve(5, [&](auto loc) {
        called = true;
        resolved = loc;
    });
    rig.run_until(35.0);

    ASSERT_TRUE(called);
    EXPECT_FALSE(resolved.has_value());
    EXPECT_GT(rig.total_replies_sent(), 0u);  // the grid answered...
    const auto& qs = rig.agents[0]->location_service()->stats();
    EXPECT_GE(qs.query_reissues, 1u);         // ...but every reply was lost
    EXPECT_GE(qs.query_fallbacks, 1u);
    EXPECT_EQ(qs.resolved_fail, 1u);
}

TEST(Als, DarkServerGridFailsWithNoReplyTraffic) {
    // Crash the server after the update round with replication off: rows are
    // gone from the network entirely, so reissues see zero reply traffic —
    // the distinct signature of "server gone" vs "reply lost".
    LocationService::Params lsp = one_shot_update_params();
    lsp.replicate = false;
    FailoverRig rig(lsp);
    rig.run_until(10.0);
    rig.network.node(4).set_up(false);
    const std::uint64_t replies_before = rig.total_replies_sent();

    bool called = false;
    std::optional<Vec2> resolved;
    rig.network.sim().at(SimTime::seconds(14.0), [&] {
        rig.agents[0]->location_service()->resolve(5, [&](auto loc) {
            called = true;
            resolved = loc;
        });
    });
    rig.run_until(40.0);

    ASSERT_TRUE(called);
    EXPECT_FALSE(resolved.has_value());
    EXPECT_EQ(rig.total_replies_sent(), replies_before);  // nobody answered
    const auto& qs = rig.agents[0]->location_service()->stats();
    EXPECT_GE(qs.query_reissues, 1u);
    EXPECT_EQ(qs.resolved_fail, 1u);
}

TEST(Als, ReplicaServesWhenPrimaryServerCrashes) {
    // With replication on, the row survives at R: the query gets stuck short
    // of the dead server and R's serve-on-stuck answers from the replica.
    FailoverRig rig(one_shot_update_params());
    rig.run_until(10.0);
    ASSERT_GT(rig.agents[3]->location_service()->store_size(), 0u);  // replica
    rig.network.node(4).set_up(false);

    bool called = false;
    std::optional<Vec2> resolved;
    // Resolve after the ANT silence window so greedy no longer offers the
    // crashed server as a next hop.
    rig.network.sim().at(SimTime::seconds(16.0), [&] {
        rig.agents[0]->location_service()->resolve(5, [&](auto loc) {
            called = true;
            resolved = loc;
        });
    });
    rig.run_until(40.0);

    ASSERT_TRUE(called);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_NEAR(resolved->x, rig.network.true_position(5).x, 1.0);
    EXPECT_NEAR(resolved->y, rig.network.true_position(5).y, 1.0);
    EXPECT_EQ(rig.agents[0]->location_service()->stats().resolved_ok, 1u);
}

// ------------------------------------------- replica-set / anti-entropy unit

/// Drives one LocationService directly through its Hooks — no radio, no
/// agent — so replica maintenance (digests, repair pushes, handoff, sweep)
/// can be asserted packet by packet. kPlain mode needs no crypto engine.
struct LsHarness {
    explicit LsHarness(LocationService::Params p = {})
        : grid(mobility::Area{1500, 300}, 300.0) {
        subject = 5;
        home = grid.home_grid(subject);
        pos = grid.center_of(home);
        LocationService::Hooks h;
        h.route = [this](std::shared_ptr<Packet> pkt) { routed.push_back(std::move(pkt)); };
        h.local_broadcast = [this](std::shared_ptr<Packet> pkt) {
            broadcast.push_back(std::move(pkt));
        };
        h.my_position = [this] { return pos; };
        h.my_id = 1;
        h.sim = &sim;
        h.rng = &rng;
        ls = std::make_unique<LocationService>(LocationService::Mode::kPlain, grid, p,
                                               std::move(h));
    }

    std::shared_ptr<Packet> plain_update(Vec2 loc) {
        auto pkt = std::make_shared<Packet>();
        pkt->type = net::PacketType::kLocUpdate;
        pkt->grid = home;
        pkt->dst_loc = grid.center_of(home);
        pkt->created_at = sim.now();
        pkt->ls_subject = subject;
        pkt->ls_subject_loc = loc;
        pkt->uid = 1000 + broadcast.size();
        return pkt;
    }

    std::shared_ptr<Packet> plain_request(NodeId requester, std::uint64_t qid,
                                          bool assist = false) {
        auto pkt = std::make_shared<Packet>();
        pkt->type = net::PacketType::kLocRequest;
        pkt->grid = home;
        pkt->dst_loc = grid.center_of(home);
        pkt->requester_loc = Vec2{10, 10};
        pkt->created_at = sim.now();
        pkt->ls_subject = subject;
        pkt->src_id = requester;
        pkt->ls_query_id = qid;
        pkt->ls_assist = assist;
        pkt->uid = 2000 + broadcast.size();
        return pkt;
    }

    std::size_t count_broadcast(net::PacketType t) const {
        std::size_t n = 0;
        for (const auto& p : broadcast)
            if (p->type == t) ++n;
        return n;
    }

    void run_until(double s) { sim.run_until(SimTime::seconds(s)); }

    sim::Simulator sim;
    util::Rng rng{7};
    GridMap grid;
    NodeId subject;
    std::uint32_t home;
    Vec2 pos;
    std::vector<std::shared_ptr<Packet>> routed, broadcast;
    std::unique_ptr<LocationService> ls;
};

TEST(LsReplica, DigestAdvertisesStoredRows) {
    LsHarness h;
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    h.ls->start();
    h.run_until(7.0);  // first digest tick at digest_interval + <=25% jitter
    ASSERT_GE(h.ls->stats().digests_sent, 1u);
    ASSERT_GE(h.count_broadcast(net::PacketType::kLocDigest), 1u);
    for (const auto& p : h.broadcast) {
        if (p->type != net::PacketType::kLocDigest) continue;
        EXPECT_EQ(p->grid, h.home);
        ASSERT_EQ(p->ls_digest.size(), 1u);  // hash+expiry only, no location
        EXPECT_GT(p->ls_digest[0].expires_ns, 0u);
    }
    EXPECT_GT(h.ls->stats().digest_bytes, 0u);
}

TEST(LsReplica, DigestFromPeerLackingRowsTriggersRepairPush) {
    LsHarness h;
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    // A peer replica's digest that advertises nothing: it lacks our row.
    auto digest = std::make_shared<Packet>();
    digest->type = net::PacketType::kLocDigest;
    digest->grid = h.home;
    digest->ls_assist = true;
    ASSERT_TRUE(h.ls->handle(digest));
    EXPECT_EQ(h.ls->stats().repairs_sent, 1u);
    ASSERT_EQ(h.count_broadcast(net::PacketType::kLocReplicate), 2u);  // store + repair
    const auto& push = h.broadcast.back();
    EXPECT_EQ(push->type, net::PacketType::kLocReplicate);
    EXPECT_EQ(push->ls_subject, h.subject);
}

TEST(LsReplica, UnknownPeerRowsTriggerReactiveDigest) {
    // A freshly restarted (empty) replica hears a digest advertising rows it
    // never saw: it must answer with its own (empty) digest so the sender
    // pushes the rows — two-round convergence instead of waiting for luck.
    LsHarness h;
    auto digest = std::make_shared<Packet>();
    digest->type = net::PacketType::kLocDigest;
    digest->grid = h.home;
    digest->ls_assist = true;
    digest->ls_digest = {{0xAAAA, 1'000'000'000'000ULL}, {0xBBBB, 1'000'000'000'000ULL}};
    ASSERT_TRUE(h.ls->handle(digest));
    EXPECT_EQ(h.ls->stats().digests_sent, 1u);
    ASSERT_EQ(h.count_broadcast(net::PacketType::kLocDigest), 1u);
    EXPECT_TRUE(h.broadcast.back()->ls_digest.empty());
}

TEST(LsReplica, HandoffPushesRowsWhenLeavingServerRadius) {
    LsHarness h;
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    h.ls->start();
    h.run_until(7.0);  // first digest tick: now serving the home grid
    ASSERT_GE(h.ls->stats().digests_sent, 1u);
    h.pos = h.grid.center_of(h.home) + Vec2{500, 0};  // drift out of radius
    h.run_until(13.0);  // next tick notices the exit
    EXPECT_EQ(h.ls->stats().handoffs, 1u);
    const auto& push = h.broadcast.back();
    EXPECT_EQ(push->type, net::PacketType::kLocReplicate);
    EXPECT_EQ(push->ls_subject, h.subject);
    // The row itself survives locally until it expires; we only step down.
    EXPECT_EQ(h.ls->store_size(), 1u);
}

TEST(LsStore, SweepDropsExpiredRowsAndCounts) {
    LocationService::Params p;
    p.entry_ttl = SimTime::seconds(2.0);
    p.sweep_interval = SimTime::seconds(1.0);
    LsHarness h(p);
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    ASSERT_EQ(h.ls->store_size(), 1u);
    h.ls->start();
    h.run_until(4.0);  // expired at 2 s, swept at the 3 s tick
    EXPECT_EQ(h.ls->store_size(), 0u);
    EXPECT_EQ(h.ls->stats().store_expired, 1u);
}

TEST(LsFailover, StaleReadServesWithinGraceOnly) {
    LocationService::Params p;
    p.entry_ttl = SimTime::seconds(2.0);
    p.stale_grace = SimTime::seconds(10.0);
    LsHarness h(p);
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    // t=5: the row expired at t=2, but grace runs to t=12 — serve it, stale.
    h.run_until(5.0);
    ASSERT_TRUE(h.ls->handle(h.plain_request(2, 0x42)));
    EXPECT_EQ(h.ls->stats().stale_reads, 1u);
    EXPECT_EQ(h.ls->stats().replies_sent, 1u);
    ASSERT_FALSE(h.routed.empty());
    EXPECT_EQ(h.routed.back()->type, net::PacketType::kLocReply);
    EXPECT_EQ(h.routed.back()->ls_subject_loc, (Vec2{100, 100}));
    // t=15: past expiry + grace — a miss, not a stale serve.
    h.run_until(15.0);
    ASSERT_TRUE(h.ls->handle(h.plain_request(2, 0x43)));
    EXPECT_EQ(h.ls->stats().stale_reads, 1u);
    EXPECT_EQ(h.ls->stats().replies_sent, 1u);
    EXPECT_GE(h.ls->stats().store_misses, 1u);
}

TEST(LsFailover, AssistedServeReadRepairsTheRow) {
    LsHarness h;
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    const std::size_t replicas_before =
        h.count_broadcast(net::PacketType::kLocReplicate);
    // An assist request means a nearer replica already missed: serving it
    // must also re-replicate the row so that replica heals.
    ASSERT_TRUE(h.ls->handle(h.plain_request(2, 0x77, /*assist=*/true)));
    EXPECT_EQ(h.ls->stats().read_repairs, 1u);
    EXPECT_EQ(h.count_broadcast(net::PacketType::kLocReplicate), replicas_before + 1);
    EXPECT_EQ(h.broadcast.back()->ls_subject, h.subject);
}

TEST(LsFailover, DuplicateQuorumRepliesAreSuppressed) {
    LsHarness h;
    int calls = 0;
    std::optional<Vec2> got;
    h.ls->resolve(h.subject, [&](std::optional<Vec2> loc) {
        ++calls;
        got = loc;
    });
    const std::uint64_t qid = (1ULL << 32) | 1;  // requester id 1, first query
    auto reply = std::make_shared<Packet>();
    reply->type = net::PacketType::kLocReply;
    reply->dst_id = 1;
    reply->ls_subject = h.subject;
    reply->ls_subject_loc = {300, 150};
    reply->ls_query_id = qid;
    ASSERT_TRUE(h.ls->handle(reply));
    ASSERT_EQ(calls, 1);
    ASSERT_TRUE(got.has_value());
    // A second replica of the quorum answers the same query id: suppressed,
    // not "late", and the callback does not fire again.
    auto dup = std::make_shared<Packet>(*reply);
    ASSERT_TRUE(h.ls->handle(dup));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(h.ls->stats().duplicates_suppressed, 1u);
    EXPECT_EQ(h.ls->stats().late_replies, 0u);
    EXPECT_EQ(h.ls->stats().resolved_ok, 1u);
}

TEST(LsFailover, CrashWipePendingThenReplyCountsLate) {
    // Requester crash interleaving: resolve, crash (reset wipes pending),
    // then the reply arrives — it must count as late, never fire the wiped
    // callback, and a post-restart resolve must work normally.
    LsHarness h;
    int calls = 0;
    h.ls->resolve(h.subject, [&](std::optional<Vec2>) { ++calls; });
    h.ls->reset();
    EXPECT_EQ(h.ls->stats().pending_wiped, 1u);
    const std::uint64_t qid = (1ULL << 32) | 1;
    auto reply = std::make_shared<Packet>();
    reply->type = net::PacketType::kLocReply;
    reply->dst_id = 1;
    reply->ls_subject = h.subject;
    reply->ls_subject_loc = {300, 150};
    reply->ls_query_id = qid;
    ASSERT_TRUE(h.ls->handle(reply));
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(h.ls->stats().late_replies, 1u);
    // Restarted node resolves again with a fresh query id; the old reply
    // cannot satisfy it.
    ASSERT_TRUE(h.ls->handle(h.plain_update({100, 100})));
    std::optional<Vec2> got;
    h.ls->resolve(h.subject, [&](std::optional<Vec2> loc) { got = loc; });
    auto reply2 = std::make_shared<Packet>(*reply);
    reply2->ls_query_id = (1ULL << 32) | 2;
    ASSERT_TRUE(h.ls->handle(reply2));
    ASSERT_TRUE(got.has_value());
}

TEST(LsFailover, StuckDigestDiesQuietly) {
    LsHarness h;
    auto digest = std::make_shared<Packet>();
    digest->type = net::PacketType::kLocDigest;
    digest->grid = h.home;
    EXPECT_TRUE(h.ls->handle_stuck(digest));  // one-hop gossip: consumed, no relay
    EXPECT_TRUE(h.broadcast.empty());
    EXPECT_TRUE(h.routed.empty());
}

// --------------------------------------------- anti-entropy, end to end

TEST(Als, RestartedServerIsRepairedByAntiEntropy) {
    // Crash-and-restart one in-radius server of the target's home grid. Its
    // store comes back empty; the surviving replicas' periodic digests must
    // repair it within a couple of gossip rounds.
    AlsNet net(LocationService::Mode::kAnonymous);
    net.run_until(20.0);

    const GridMap grid(mobility::Area{1500, 300}, 300.0);
    const Vec2 center = grid.center_of(grid.home_grid(15));
    NodeId victim = net::kInvalidNode;
    for (NodeId id = 0; id < static_cast<NodeId>(net.agents.size()); ++id) {
        if (util::distance(net.network.true_position(id), center) <= 200.0 &&
            net.agents[id]->location_service()->store_size() > 0) {
            victim = id;
            break;
        }
    }
    ASSERT_NE(victim, net::kInvalidNode);

    net.network.node(victim).set_up(false);
    net.run_until(21.0);
    net.network.node(victim).set_up(true);  // restart wipes the LS store
    EXPECT_EQ(net.agents[victim]->location_service()->store_size(), 0u);

    net.run_until(40.0);  // several digest intervals (5 s each)
    EXPECT_GT(net.agents[victim]->location_service()->store_size(), 0u);
    std::uint64_t digests = 0, repairs = 0;
    for (auto* a : net.agents) {
        digests += a->location_service()->stats().digests_sent;
        repairs += a->location_service()->stats().repairs_sent;
    }
    EXPECT_GT(digests, 0u);
    EXPECT_GT(repairs, 0u);
}

}  // namespace
