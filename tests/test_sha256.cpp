#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace {

using geoanon::crypto::Sha256;
using geoanon::crypto::sha256_keystream;
using geoanon::crypto::sha256_u64;
using geoanon::util::Bytes;
using geoanon::util::to_hex;

std::string hex_digest(const Sha256::Digest& d) { return to_hex({d.data(), d.size()}); }

// FIPS 180-4 / NIST CAVS known-answer tests.

TEST(Sha256, EmptyString) {
    EXPECT_EQ(hex_digest(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hex_digest(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hex_digest(Sha256::hash(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex_digest(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
    // 64 bytes: padding spills into a second block.
    const std::string msg(64, 'x');
    const auto one_shot = Sha256::hash(msg);
    Sha256 streaming;
    streaming.update(msg.substr(0, 13));
    streaming.update(msg.substr(13));
    EXPECT_EQ(one_shot, streaming.finish());
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
    // 55 bytes: padding fits in one block; 56: does not. Both must round-trip
    // against the streaming interface.
    for (std::size_t len : {55u, 56u, 63u, 65u}) {
        const std::string msg(len, 'q');
        Sha256 byte_at_a_time;
        for (char c : msg) byte_at_a_time.update(std::string_view(&c, 1));
        EXPECT_EQ(Sha256::hash(msg), byte_at_a_time.finish()) << "len=" << len;
    }
}

TEST(Sha256, DifferentInputsDiffer) {
    EXPECT_NE(Sha256::hash("foo"), Sha256::hash("fop"));
    EXPECT_NE(Sha256::hash("foo"), Sha256::hash("foo "));
}

TEST(Sha256Keystream, DeterministicAndLengthExact) {
    const Bytes key{1, 2, 3};
    const Bytes a = sha256_keystream(key, 100);
    const Bytes b = sha256_keystream(key, 100);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(sha256_keystream(key, 7).size(), 7u);
}

TEST(Sha256Keystream, PrefixProperty) {
    const Bytes key{9, 9};
    const Bytes longer = sha256_keystream(key, 96);
    const Bytes shorter = sha256_keystream(key, 40);
    EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), longer.begin()));
}

TEST(Sha256Keystream, KeySensitivity) {
    EXPECT_NE(sha256_keystream(Bytes{1}, 32), sha256_keystream(Bytes{2}, 32));
}

TEST(Sha256U64, MatchesDigestPrefix) {
    const auto d = Sha256::hash("abc");
    std::uint64_t expected = 0;
    for (int i = 0; i < 8; ++i) expected = (expected << 8) | d[static_cast<std::size_t>(i)];
    const Bytes abc{'a', 'b', 'c'};
    EXPECT_EQ(sha256_u64(abc), expected);
}

}  // namespace
