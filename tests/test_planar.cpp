#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/agfw.hpp"
#include "core/planar.hpp"
#include "crypto/engine.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"

namespace {

using namespace geoanon;
using core::AgfwAgent;
using core::AnonymousNeighborTable;
using core::ccw_angle;
using core::right_hand_next;
using core::rng_planarize;
using net::NodeId;
using net::Packet;
using util::SimTime;
using util::Vec2;

AnonymousNeighborTable::Entry entry(std::uint64_t n, Vec2 loc) {
    AnonymousNeighborTable::Entry e;
    e.n = n;
    e.loc = loc;
    e.expires = SimTime::seconds(1e9);
    return e;
}

// ------------------------------------------------------------ planarization

TEST(Planar, RngKeepsIsolatedEdges) {
    // Two far-apart neighbors with no witness: both edges stay.
    const auto kept = rng_planarize({0, 0}, {entry(1, {100, 0}), entry(2, {-100, 0})});
    EXPECT_EQ(kept.size(), 2u);
}

TEST(Planar, RngRemovesWitnessedEdge) {
    // w sits inside the lune of (self, v): edge to v must be removed.
    const auto kept =
        rng_planarize({0, 0}, {entry(1, {200, 0}), entry(2, {100, 20})});
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].n, 2u);
}

TEST(Planar, RngIsSubsetOfInput) {
    util::Rng rng(5);
    std::vector<AnonymousNeighborTable::Entry> neighbors;
    for (std::uint64_t i = 1; i <= 20; ++i)
        neighbors.push_back(entry(i, {rng.uniform(-250, 250), rng.uniform(-250, 250)}));
    const auto kept = rng_planarize({0, 0}, neighbors);
    EXPECT_LE(kept.size(), neighbors.size());
    EXPECT_GE(kept.size(), 1u);
    for (const auto& k : kept) {
        const bool found = std::any_of(neighbors.begin(), neighbors.end(),
                                       [&](const auto& n) { return n.n == k.n; });
        EXPECT_TRUE(found);
    }
}

TEST(Planar, RngEquidistantPairSurvives) {
    // Witness rule uses strict inequality: collinear equal distances stay.
    const auto kept = rng_planarize({0, 0}, {entry(1, {100, 0}), entry(2, {200, 0})});
    // 1 witnesses 2? max(d(0,1), d(2,1)) = max(100,100) = 100 < 200: removed.
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].n, 1u);
}

// --------------------------------------------------------------- ccw angles

TEST(Planar, CcwAngleCardinal) {
    const Vec2 self{0, 0};
    const Vec2 east{1, 0};
    EXPECT_NEAR(ccw_angle(self, east, {10, 0}), 0.0, 1e-9);
    EXPECT_NEAR(ccw_angle(self, east, {0, 10}), M_PI / 2, 1e-9);
    EXPECT_NEAR(ccw_angle(self, east, {-10, 0}), M_PI, 1e-9);
    EXPECT_NEAR(ccw_angle(self, east, {0, -10}), 3 * M_PI / 2, 1e-9);
}

TEST(Planar, CcwAngleArbitraryReference) {
    const Vec2 self{10, 10};
    const Vec2 ref{0, 1};  // north
    // (0,20) is northwest of self: 45deg counterclockwise from north.
    EXPECT_NEAR(ccw_angle(self, ref, {0, 20}), M_PI / 4, 1e-9);
}

// ------------------------------------------------------------ right-hand rule

TEST(Planar, RightHandPicksFirstCcwNeighbor) {
    const Vec2 self{0, 0};
    const Vec2 came_from{100, 0};  // incoming edge from the east
    const std::vector<AnonymousNeighborTable::Entry> planar{
        entry(1, {0, 100}),    // 90deg ccw from incoming direction (east)
        entry(2, {-100, 0}),   // 180deg
        entry(3, {0, -100}),   // 270deg
    };
    const auto next = right_hand_next(self, came_from, planar, {});
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->n, 1u);
}

TEST(Planar, RightHandSkipsExcluded) {
    const Vec2 self{0, 0};
    const std::vector<AnonymousNeighborTable::Entry> planar{
        entry(1, {0, 100}),
        entry(2, {-100, 0}),
    };
    const auto next = right_hand_next(self, {100, 0}, planar, {1});
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->n, 2u);
}

TEST(Planar, RightHandReverseEdgeIsLastResort) {
    const Vec2 self{0, 0};
    const std::vector<AnonymousNeighborTable::Entry> planar{
        entry(1, {100, 0}),   // exactly back where we came from
        entry(2, {0, -100}),  // 270deg ccw
    };
    const auto next = right_hand_next(self, {100, 0}, planar, {});
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->n, 2u);
    // With only the reverse edge available, it is still taken.
    const auto only = right_hand_next(self, {100, 0}, {entry(1, {100, 0})}, {});
    ASSERT_TRUE(only.has_value());
    EXPECT_EQ(only->n, 1u);
}

TEST(Planar, RightHandEmptyReturnsNullopt) {
    EXPECT_FALSE(right_hand_next({0, 0}, {1, 0}, {}, {}).has_value());
}

// ----------------------------------------------- perimeter-mode integration

/// A "void" topology where greedy forwarding dead-ends and only the
/// right-hand face traversal reaches the destination:
///
///        B(150,200)   C(350,240)
///                            E(480,120)
///   S(0,0)   A(200,0)   [void]   D(550,0)
struct VoidNet {
    explicit VoidNet(bool enable_perimeter) : network(phy::PhyParams{}, 41) {
        engine = std::make_unique<crypto::ModeledCryptoEngine>(5, 512);
        const std::vector<Vec2> positions{
            {0, 0}, {200, 0}, {150, 200}, {350, 240}, {480, 120}, {550, 0}};
        std::vector<crypto::NodeIdNum> universe;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            engine->register_node(i);
            universe.push_back(i);
        }
        mac::MacParams mp;
        mp.use_rtscts = false;
        mp.anonymous_source = true;
        AgfwAgent::Params params;
        params.enable_perimeter = enable_perimeter;
        // Disable the NL-ACK alternate-next-hop recovery so the test
        // isolates perimeter mode (rerouting alone can also skirt the void).
        params.reroute_limit = 0;
        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mp);
            auto agent = std::make_unique<AgfwAgent>(
                node, params, *engine, universe,
                [this](NodeId id) -> std::optional<Vec2> {
                    return network.true_position(id);
                },
                [this](NodeId at, const Packet& pkt) {
                    deliveries.emplace_back(at, pkt);
                });
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
        network.sim().run_until(SimTime::seconds(5));
    }

    net::Network network;
    std::unique_ptr<crypto::CryptoEngine> engine;
    std::vector<AgfwAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
};

TEST(Perimeter, GreedyAloneDropsAtTheVoid) {
    VoidNet net(/*enable_perimeter=*/false);
    net.agents[0]->send_data(5, 0, 0, {});
    net.network.sim().run_until(SimTime::seconds(15));
    EXPECT_TRUE(net.deliveries.empty());
    // Node A (id 1) is the local maximum: it is the stuck relay.
    EXPECT_GE(net.agents[1]->stats().stop_no_route +
                  net.agents[0]->stats().drop_no_route +
                  net.agents[0]->stats().drop_unreachable,
              1u);
    EXPECT_EQ(net.agents[1]->stats().perimeter_entries, 0u);
}

TEST(Perimeter, RecoversAroundTheVoid) {
    VoidNet net(/*enable_perimeter=*/true);
    net.agents[0]->send_data(5, 0, 0, {});
    net.network.sim().run_until(SimTime::seconds(15));
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 5u);
    // The stuck relay entered perimeter mode; someone later recovered to
    // greedy strictly closer to the destination.
    std::uint64_t entries = 0, recoveries = 0, pforwards = 0;
    for (auto* a : net.agents) {
        entries += a->stats().perimeter_entries;
        recoveries += a->stats().perimeter_recoveries;
        pforwards += a->stats().perimeter_forwards;
    }
    EXPECT_GE(entries, 1u);
    EXPECT_GE(recoveries, 1u);
    EXPECT_GE(pforwards, 2u);
    // The perimeter header bytes were accounted while traversing the face.
    EXPECT_GT(net.deliveries[0].second.hops, 3u);
}

TEST(Perimeter, ManyPacketsAllRecover) {
    VoidNet net(/*enable_perimeter=*/true);
    for (std::uint32_t i = 0; i < 10; ++i) net.agents[0]->send_data(5, 0, i, {});
    net.network.sim().run_until(SimTime::seconds(20));
    EXPECT_EQ(net.deliveries.size(), 10u);
}

TEST(Perimeter, TtlStopsFaceLoops) {
    // Destination location points into empty space (no node there): the face
    // traversal must terminate via the hop limit, not loop forever.
    VoidNet net(/*enable_perimeter=*/true);
    // Craft a packet toward an unreachable location by lying to the oracle:
    // send to node 5 but with a bogus location only reachable by looping.
    auto pkt = std::make_shared<Packet>();
    pkt->type = net::PacketType::kAgfwData;
    pkt->uid = 0xDEAD;
    pkt->dst_loc = {275, -400};  // south of the void: no nodes there
    pkt->trapdoor = net.engine->make_trapdoor(5, util::Bytes{1}, net.network.rng());
    pkt->wire_bytes = 100;
    net.agents[0]->route_packet(pkt);
    net.network.sim().run_until(SimTime::seconds(30));
    EXPECT_TRUE(net.deliveries.empty());
    std::uint64_t ttl_drops = 0, pforwards = 0;
    for (auto* a : net.agents) {
        ttl_drops += a->stats().perimeter_ttl_drops;
        pforwards += a->stats().perimeter_forwards;
    }
    // The traversal happened but was bounded.
    EXPECT_GE(pforwards, 1u);
    EXPECT_LE(pforwards, 200u);
}

}  // namespace
