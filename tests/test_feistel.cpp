#include <gtest/gtest.h>

#include "crypto/feistel.hpp"
#include "util/rng.hpp"

namespace {

using geoanon::crypto::FeistelPermutation;
using geoanon::util::Bytes;
using geoanon::util::Rng;

Bytes random_block(Rng& rng, std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
    return out;
}

TEST(Feistel, EncryptDecryptRoundTrip) {
    const FeistelPermutation f(Bytes{1, 2, 3}, 16);
    const Bytes block{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
    EXPECT_EQ(f.decrypt(f.encrypt(block)), block);
    EXPECT_EQ(f.encrypt(f.decrypt(block)), block);
}

TEST(Feistel, Deterministic) {
    const FeistelPermutation f(Bytes{9}, 8);
    const Bytes block{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(f.encrypt(block), f.encrypt(block));
}

TEST(Feistel, KeySensitivity) {
    const FeistelPermutation f1(Bytes{1}, 8);
    const FeistelPermutation f2(Bytes{2}, 8);
    const Bytes block{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_NE(f1.encrypt(block), f2.encrypt(block));
}

TEST(Feistel, EncryptActuallyChangesInput) {
    const FeistelPermutation f(Bytes{7, 7}, 10);
    const Bytes block(10, 0x00);
    EXPECT_NE(f.encrypt(block), block);
}

TEST(Feistel, AvalancheAcrossBlock) {
    // Flipping one input bit should change roughly half the output bits.
    const FeistelPermutation f(Bytes{5}, 32);
    Rng rng(1);
    const Bytes a = random_block(rng, 32);
    Bytes b = a;
    b[0] ^= 0x01;
    const Bytes ea = f.encrypt(a);
    const Bytes eb = f.encrypt(b);
    int diff_bits = 0;
    for (std::size_t i = 0; i < ea.size(); ++i)
        diff_bits += __builtin_popcount(static_cast<unsigned>(ea[i] ^ eb[i]));
    EXPECT_GT(diff_bits, 64);   // out of 256
    EXPECT_LT(diff_bits, 192);
}

TEST(Feistel, PermutationIsBijectiveOnTinyDomain) {
    // Exhaustively check bijectivity over a 2-byte block (65536 values).
    const FeistelPermutation f(Bytes{0xAA}, 2);
    std::vector<bool> seen(65536, false);
    for (unsigned v = 0; v < 65536; ++v) {
        const Bytes in{static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
        const Bytes out = f.encrypt(in);
        const unsigned o = (static_cast<unsigned>(out[0]) << 8) | out[1];
        EXPECT_FALSE(seen[o]) << "collision at input " << v;
        seen[o] = true;
    }
}

class FeistelRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FeistelRoundTrip, RandomBlocksRoundTrip) {
    const std::size_t block_size = GetParam();
    Rng rng(block_size * 977);
    const FeistelPermutation f(random_block(rng, 32), block_size);
    for (int i = 0; i < 50; ++i) {
        const Bytes block = random_block(rng, block_size);
        EXPECT_EQ(f.decrypt(f.encrypt(block)), block);
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, FeistelRoundTrip,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 72u, 130u));

}  // namespace
