#include <gtest/gtest.h>

#include "crypto/bignum.hpp"
#include "util/rng.hpp"

namespace {

using geoanon::crypto::Bignum;
using geoanon::util::Rng;

TEST(Bignum, ZeroProperties) {
    Bignum z;
    EXPECT_TRUE(z.is_zero());
    EXPECT_FALSE(z.is_odd());
    EXPECT_EQ(z.bit_length(), 0u);
    EXPECT_EQ(z.to_hex(), "0");
    EXPECT_EQ(z.low_u64(), 0u);
}

TEST(Bignum, U64RoundTrip) {
    const Bignum v{0x0123456789ABCDEFULL};
    EXPECT_EQ(v.low_u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(v.bit_length(), 57u);
    EXPECT_EQ(v.to_hex(), "123456789abcdef");
}

TEST(Bignum, BytesRoundTrip) {
    const geoanon::util::Bytes be{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
    const Bignum v = Bignum::from_bytes_be(be);
    EXPECT_EQ(v.to_bytes_be(9), be);
    // Leading zeros are preserved by explicit width.
    const auto wide = v.to_bytes_be(12);
    EXPECT_EQ(wide.size(), 12u);
    EXPECT_EQ(wide[0], 0);
    EXPECT_EQ(wide[3], 0x01);
}

TEST(Bignum, FromHex) {
    const auto v = Bignum::from_hex("deadbeef");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->low_u64(), 0xDEADBEEFULL);
    EXPECT_EQ(Bignum::from_hex("f")->low_u64(), 15u);  // odd length ok
    EXPECT_FALSE(Bignum::from_hex("xy").has_value());
}

TEST(Bignum, CompareOrdering) {
    const Bignum a{5}, b{7}, c{5};
    EXPECT_LT(Bignum::cmp(a, b), 0);
    EXPECT_GT(Bignum::cmp(b, a), 0);
    EXPECT_EQ(Bignum::cmp(a, c), 0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(a == c);
    EXPECT_TRUE(b >= a);
}

TEST(Bignum, AddSubSmall) {
    const Bignum a{1000000007}, b{998244353};
    EXPECT_EQ(Bignum::add(a, b).low_u64(), 1998244360u);
    EXPECT_EQ(Bignum::sub(a, b).low_u64(), 1755654u);
    EXPECT_TRUE(Bignum::sub(a, a).is_zero());
}

TEST(Bignum, AddCarriesAcrossLimbs) {
    const Bignum a{0xFFFFFFFFFFFFFFFFULL};
    const Bignum sum = Bignum::add(a, Bignum{1});
    EXPECT_EQ(sum.bit_length(), 65u);
    EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(Bignum, MulSmall) {
    EXPECT_EQ(Bignum::mul(Bignum{123456789}, Bignum{987654321}).low_u64(),
              123456789ULL * 987654321ULL);
    EXPECT_TRUE(Bignum::mul(Bignum{0}, Bignum{12345}).is_zero());
}

TEST(Bignum, MulKnownBig) {
    // (2^64-1)^2 = 2^128 - 2^65 + 1
    const Bignum a{0xFFFFFFFFFFFFFFFFULL};
    EXPECT_EQ(Bignum::mul(a, a).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(Bignum, ShiftLeftRight) {
    const Bignum one{1};
    const Bignum big = Bignum::shl(one, 100);
    EXPECT_EQ(big.bit_length(), 101u);
    EXPECT_EQ(Bignum::shr(big, 100), one);
    EXPECT_TRUE(Bignum::shr(one, 1).is_zero());
    EXPECT_EQ(Bignum::shl(Bignum{0b1011}, 3).low_u64(), 0b1011000u);
    EXPECT_EQ(Bignum::shr(Bignum{0b1011000}, 3).low_u64(), 0b1011u);
}

TEST(Bignum, DivmodSmall) {
    auto [q, r] = Bignum::divmod(Bignum{100}, Bignum{7});
    EXPECT_EQ(q.low_u64(), 14u);
    EXPECT_EQ(r.low_u64(), 2u);
}

TEST(Bignum, DivmodByLargerGivesZero) {
    auto [q, r] = Bignum::divmod(Bignum{5}, Bignum{7});
    EXPECT_TRUE(q.is_zero());
    EXPECT_EQ(r.low_u64(), 5u);
}

TEST(Bignum, DivmodKnuthAddBackCase) {
    // Force the rare "add back" branch with crafted operands: the classic
    // example B^2/2 - 1 over B/2 shapes (B = 2^32).
    const auto num = Bignum::from_hex("7fffffff800000010000000000000000");
    const auto den = Bignum::from_hex("800000008000000200000005");
    ASSERT_TRUE(num && den);
    auto [q, r] = Bignum::divmod(*num, *den);
    // Verify via reconstruction: q*den + r == num, r < den.
    EXPECT_EQ(Bignum::add(Bignum::mul(q, *den), r), *num);
    EXPECT_LT(Bignum::cmp(r, *den), 0);
}

TEST(Bignum, MulmodPowmodSmall) {
    EXPECT_EQ(Bignum::mulmod(Bignum{123}, Bignum{456}, Bignum{789}).low_u64(),
              123 * 456 % 789);
    EXPECT_EQ(Bignum::powmod(Bignum{2}, Bignum{10}, Bignum{1000}).low_u64(), 24u);
    EXPECT_EQ(Bignum::powmod(Bignum{3}, Bignum{0}, Bignum{7}).low_u64(), 1u);
    EXPECT_TRUE(Bignum::powmod(Bignum{3}, Bignum{5}, Bignum{1}).is_zero());
}

TEST(Bignum, PowmodFermat) {
    // a^(p-1) = 1 mod p for prime p = 2^61 - 1.
    const Bignum p{(1ULL << 61) - 1};
    const Bignum exp = Bignum::sub(p, Bignum{1});
    EXPECT_EQ(Bignum::powmod(Bignum{123456789}, exp, p), Bignum{1});
}

TEST(Bignum, GcdBasics) {
    EXPECT_EQ(Bignum::gcd(Bignum{48}, Bignum{36}).low_u64(), 12u);
    EXPECT_EQ(Bignum::gcd(Bignum{17}, Bignum{13}).low_u64(), 1u);
    EXPECT_EQ(Bignum::gcd(Bignum{0}, Bignum{5}).low_u64(), 5u);
}

TEST(Bignum, ModinvKnown) {
    // 3 * 4 = 12 = 1 mod 11.
    const auto inv = Bignum::modinv(Bignum{3}, Bignum{11});
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(inv->low_u64(), 4u);
}

TEST(Bignum, ModinvNotCoprime) {
    EXPECT_FALSE(Bignum::modinv(Bignum{6}, Bignum{9}).has_value());
}

TEST(Bignum, ModinvLargeVerified) {
    Rng rng(99);
    const Bignum m = Bignum::random_prime(rng, 128);
    for (int i = 0; i < 5; ++i) {
        const Bignum a = Bignum::add(Bignum::random_below(rng, Bignum::sub(m, Bignum{1})),
                                     Bignum{1});
        const auto inv = Bignum::modinv(a, m);
        ASSERT_TRUE(inv.has_value());
        EXPECT_EQ(Bignum::mulmod(a, *inv, m), Bignum{1});
    }
}

TEST(Bignum, RandomBelowInRange) {
    Rng rng(5);
    const Bignum bound{1000};
    for (int i = 0; i < 200; ++i) {
        const Bignum v = Bignum::random_below(rng, bound);
        EXPECT_LT(Bignum::cmp(v, bound), 0);
    }
}

TEST(Bignum, RandomBitsExactWidth) {
    Rng rng(6);
    for (std::size_t bits : {8u, 33u, 64u, 100u, 256u}) {
        const Bignum v = Bignum::random_bits(rng, bits);
        EXPECT_EQ(v.bit_length(), bits);
    }
}

TEST(Bignum, MillerRabinKnownPrimes) {
    Rng rng(1);
    for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 2147483647ULL,
                            (1ULL << 61) - 1}) {
        EXPECT_TRUE(Bignum::is_probable_prime(Bignum{p}, rng)) << p;
    }
}

TEST(Bignum, MillerRabinKnownComposites) {
    Rng rng(2);
    // Includes Carmichael numbers 561, 1105, 1729.
    for (std::uint64_t c : {1ULL, 4ULL, 100ULL, 561ULL, 1105ULL, 1729ULL,
                            2147483647ULL * 2, 0xFFFFFFFFFFFFFFFFULL}) {
        EXPECT_FALSE(Bignum::is_probable_prime(Bignum{c}, rng)) << c;
    }
}

TEST(Bignum, RandomPrimeHasRequestedShape) {
    Rng rng(77);
    const Bignum p = Bignum::random_prime(rng, 96);
    EXPECT_EQ(p.bit_length(), 96u);
    EXPECT_TRUE(p.is_odd());
    EXPECT_TRUE(p.bit(94));  // second-highest bit forced
    EXPECT_TRUE(Bignum::is_probable_prime(p, rng));
}

// ---------------------------------------------------------------------
// Property sweeps against 64-bit reference arithmetic.
// ---------------------------------------------------------------------

class BignumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BignumProperty, ArithmeticMatchesU64Reference) {
    Rng rng(GetParam());
    for (int i = 0; i < 300; ++i) {
        const std::uint64_t a = rng.next_u64() >> (rng.uniform_int(0, 40));
        const std::uint64_t b = rng.next_u64() >> (rng.uniform_int(0, 40));
        const Bignum A{a}, B{b};

        EXPECT_EQ(Bignum::cmp(A, B), a < b ? -1 : (a > b ? 1 : 0));

        const unsigned __int128 sum = static_cast<unsigned __int128>(a) + b;
        const Bignum S = Bignum::add(A, B);
        EXPECT_EQ(S.low_u64(), static_cast<std::uint64_t>(sum));
        EXPECT_EQ(S.bit_length() > 64, (sum >> 64) != 0);

        if (a >= b) {
            EXPECT_EQ(Bignum::sub(A, B).low_u64(), a - b);
        }

        const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
        const auto P = Bignum::mul(A, B);
        const auto p_bytes = P.to_bytes_be(16);
        unsigned __int128 p_val = 0;
        for (auto byte : p_bytes) p_val = (p_val << 8) | byte;
        EXPECT_TRUE(p_val == prod);

        if (b != 0) {
            auto [q, r] = Bignum::divmod(A, B);
            EXPECT_EQ(q.low_u64(), a / b);
            EXPECT_EQ(r.low_u64(), a % b);
        }
    }
}

TEST_P(BignumProperty, DivmodReconstructsWideOperands) {
    Rng rng(GetParam() ^ 0xABCDEF);
    for (int i = 0; i < 40; ++i) {
        const auto nbits = static_cast<std::size_t>(rng.uniform_int(65, 512));
        const auto dbits = static_cast<std::size_t>(rng.uniform_int(33, static_cast<std::int64_t>(nbits)));
        const Bignum num = Bignum::random_bits(rng, nbits);
        const Bignum den = Bignum::random_bits(rng, dbits);
        auto [q, r] = Bignum::divmod(num, den);
        EXPECT_EQ(Bignum::add(Bignum::mul(q, den), r), num);
        EXPECT_LT(Bignum::cmp(r, den), 0);
    }
}

TEST_P(BignumProperty, PowmodMatchesIteratedMulmod) {
    Rng rng(GetParam() ^ 0x5555);
    const Bignum m = Bignum::random_bits(rng, 128);
    const Bignum base = Bignum::random_below(rng, m);
    const std::uint64_t e = static_cast<std::uint64_t>(rng.uniform_int(0, 50));
    Bignum expect{1};
    for (std::uint64_t i = 0; i < e; ++i) expect = Bignum::mulmod(expect, base, m);
    EXPECT_EQ(Bignum::powmod(base, Bignum{e}, m), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 20260706u));

}  // namespace
