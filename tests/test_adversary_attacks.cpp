// The offline linking/trajectory attack (DESIGN.md §16) on hand-built
// observation sequences with known ground truth, plus end-to-end scenario
// checks that the pseudonym-policy countermeasures actually move the attack
// metrics.

#include <gtest/gtest.h>

#include "adversary/trajectory.hpp"
#include "experiment/json.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using adversary::AttackParams;
using adversary::AttackReport;
using adversary::Observation;
using adversary::ObservationKind;

Observation hello(double t_s, double x, double y, std::uint64_t handle,
                  net::NodeId owner) {
    Observation o;
    o.t_s = t_s;
    o.pos = {x, y};
    o.kind = ObservationKind::kHello;
    o.handle = handle;
    o.true_sender = owner;
    return o;
}

AttackParams params(bool global = true) {
    AttackParams ap;
    ap.linker.max_speed_mps = 20.0;
    ap.linker.slack_m = 10.0;
    ap.linker.max_gap_s = 30.0;
    ap.linker.global_matching = global;
    return ap;
}

TEST(LinkingAttack, PerfectChainOnWalkingNode) {
    // One node walking east at 10 m/s, a fresh pseudonym each beacon. Every
    // successive pair passes the speed gate unambiguously: the attacker
    // reconstructs the full trajectory.
    std::vector<Observation> obs;
    for (int i = 0; i < 5; ++i)
        obs.push_back(hello(2.0 * i, 20.0 * i, 0.0, 100 + i, 7));

    // max_gap below two beacon intervals: only the immediate predecessor
    // gates each link, so every pseudonym change is unambiguous (anonymity
    // set counts ALL gate-passing predecessors, not just the chosen one).
    AttackParams ap = params();
    ap.linker.max_gap_s = 3.0;
    const AttackReport r = adversary::run_attack(obs, ap, 8.0);
    EXPECT_EQ(r.hello_observations, 5u);
    EXPECT_EQ(r.tracklets, 5u);
    EXPECT_EQ(r.chains, 1u);
    EXPECT_EQ(r.links_made, 4u);
    EXPECT_EQ(r.links_correct, 4u);
    EXPECT_DOUBLE_EQ(r.link_precision, 1.0);
    EXPECT_DOUBLE_EQ(r.link_recall, 1.0);
    EXPECT_DOUBLE_EQ(r.tracking_success_rate, 1.0);
    EXPECT_DOUBLE_EQ(r.mean_anonymity_set, 1.0);
    // Reconstructed positions sit exactly on the true track.
    EXPECT_NEAR(r.mean_path_error_m, 0.0, 1e-9);
}

TEST(LinkingAttack, ImpossibleLinkBeyondMaxSpeed) {
    // Two sightings 1000 m apart one second apart: bridging them implies
    // 1000 m/s >> 20 m/s. The gate must refuse, leaving two singleton chains
    // (even though both truly belong to one node — say, a tunnel teleport).
    std::vector<Observation> obs = {
        hello(0.0, 0.0, 0.0, 1, 3),
        hello(1.0, 1000.0, 0.0, 2, 3),
    };
    const AttackReport r = adversary::run_attack(obs, params(), 1.0);
    EXPECT_EQ(r.tracklets, 2u);
    EXPECT_EQ(r.chains, 2u);
    EXPECT_EQ(r.links_made, 0u);
    EXPECT_EQ(r.candidate_pairs, 0u);
    EXPECT_DOUBLE_EQ(r.link_recall, 0.0);
}

TEST(LinkingAttack, EqualHandlesLinkForFree) {
    // A reused pseudonym is one tracklet regardless of gaps — the whole
    // reason kTimed is the weak end of the policy axis.
    std::vector<Observation> obs = {
        hello(0.0, 0.0, 0.0, 9, 1),
        hello(60.0, 900.0, 0.0, 9, 1),  // gap and distance far beyond the gate
    };
    const AttackReport r = adversary::run_attack(obs, params(), 60.0);
    EXPECT_EQ(r.tracklets, 1u);
    EXPECT_EQ(r.chains, 1u);
    EXPECT_DOUBLE_EQ(r.tracking_success_rate, 1.0);
}

TEST(LinkingAttack, MixZoneSwapConfusesTheAttacker) {
    // Two nodes cross symmetrically through a silent region and rotate
    // pseudonyms inside it. Both emerging tracklets gate both entering
    // tracklets — and the cheapest (implied-slowest) assignment is the
    // SWAPPED one, so even the strong attacker exits the zone tracking the
    // wrong node. This is the mix-zone guarantee in miniature.
    std::vector<Observation> obs = {
        // Node 1 eastbound: enters the zone after t=5.
        hello(0.0, 0.0, 0.0, 101, 1),
        hello(5.0, 50.0, 0.0, 102, 1),
        // Node 2 westbound, mirror image.
        hello(0.0, 200.0, 0.0, 201, 2),
        hello(5.0, 150.0, 0.0, 202, 2),
        // Both re-emerge at t=15 on the far side, fresh pseudonyms. Node 1
        // is now where node 2 entered and vice versa.
        hello(15.0, 150.0, 0.0, 103, 1),
        hello(15.0, 50.0, 0.0, 203, 2),
    };
    const AttackReport r = adversary::run_attack(obs, params(), 15.0);
    EXPECT_EQ(r.tracklets, 6u);
    // The post-zone joins were ambiguous: at least two gate-passing
    // predecessors for each committed cross-zone link.
    EXPECT_GE(r.max_anonymity_set, 2.0);
    EXPECT_GE(r.mean_anonymity_set, 1.5);
    // The swap worked: some committed links join different nodes' tracklets.
    EXPECT_GT(r.links_made, 0u);
    EXPECT_LT(r.links_correct, r.links_made);
    EXPECT_LT(r.link_precision, 1.0);
    EXPECT_LT(r.tracking_success_rate, 1.0);
}

TEST(LinkingAttack, WeakAttackerNeverBeatsStrongOnPrecisionHere) {
    // Same crossing; the online greedy attacker commits in time order and
    // cannot do better than the global matcher on this instance.
    std::vector<Observation> obs = {
        hello(0.0, 0.0, 0.0, 101, 1),   hello(5.0, 50.0, 0.0, 102, 1),
        hello(0.0, 200.0, 0.0, 201, 2), hello(5.0, 150.0, 0.0, 202, 2),
        hello(15.0, 150.0, 0.0, 103, 1), hello(15.0, 50.0, 0.0, 203, 2),
    };
    const AttackReport weak = adversary::run_attack(obs, params(false), 15.0);
    const AttackReport strong = adversary::run_attack(obs, params(true), 15.0);
    EXPECT_LE(weak.link_precision, strong.link_precision + 1e-12);
    EXPECT_EQ(weak.links_made, strong.links_made);
}

TEST(LinkingAttack, ReportIsDeterministic) {
    std::vector<Observation> obs;
    for (int n = 0; n < 4; ++n)
        for (int i = 0; i < 6; ++i)
            obs.push_back(hello(1.5 * i + 0.1 * n, 15.0 * i + 40.0 * n,
                                7.0 * n, 1000 * (n + 1) + i,
                                static_cast<net::NodeId>(n)));
    const AttackReport a = adversary::run_attack(obs, params(), 10.0);
    const AttackReport b = adversary::run_attack(obs, params(), 10.0);
    EXPECT_EQ(a.links_made, b.links_made);
    EXPECT_EQ(a.links_correct, b.links_correct);
    EXPECT_EQ(a.chains, b.chains);
    EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
    EXPECT_EQ(a.link_precision, b.link_precision);
    EXPECT_EQ(a.tracking_success_rate, b.tracking_success_rate);
    EXPECT_EQ(a.mean_path_error_m, b.mean_path_error_m);
    EXPECT_EQ(a.anonymity_over_time, b.anonymity_over_time);
}

// ---------------------------------------------------------------------------
// End-to-end: the attack wired through ScenarioRunner.
// ---------------------------------------------------------------------------

workload::ScenarioConfig scenario(workload::Scheme scheme) {
    workload::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 40;
    cfg.sim_seconds = 120.0;
    cfg.traffic_stop_s = 110.0;
    cfg.seed = 17;
    cfg.attach_observer = true;
    return cfg;
}

TEST(LinkingAttackE2E, GpsrIdentityBeaconsCalibrateTheAttack) {
    // Cleartext GPSR ids are pseudonyms that never rotate: the attack should
    // track essentially every node for essentially the whole run.
    workload::ScenarioRunner runner(scenario(workload::Scheme::kGpsrGreedy));
    const auto r = runner.run();
    EXPECT_GT(r.attack.hello_observations, 1000u);
    EXPECT_GT(r.attack.tracking_success_rate, 0.9);
}

TEST(LinkingAttackE2E, MixZonePolicyBeatsPerHello) {
    auto base = scenario(workload::Scheme::kAgfwAck);

    auto mixed = base;
    mixed.agfw.pseudonym_policy.kind = core::PseudonymPolicy::Kind::kMixZone;
    mixed.agfw.pseudonym_policy.zones =
        core::PseudonymPolicy::grid_layout(mixed.area, 3, 150.0);

    workload::ScenarioRunner base_runner(base);
    const auto r_base = base_runner.run();
    workload::ScenarioRunner mixed_runner(mixed);
    const auto r_mixed = mixed_runner.run();

    EXPECT_EQ(r_base.hello_suppressed, 0u);
    EXPECT_GT(r_mixed.hello_suppressed, 0u);
    // Fewer observable hellos and broken continuity: tracking must drop.
    EXPECT_LT(r_mixed.attack.tracking_success_rate,
              r_base.attack.tracking_success_rate);
    // Suppression costs beacons, not data: traffic still flows.
    EXPECT_GT(r_mixed.delivery_fraction, 0.5);
}

TEST(LinkingAttackE2E, ResultJsonIsDeterministic) {
    auto cfg = scenario(workload::Scheme::kAgfwAck);
    cfg.sim_seconds = 60.0;
    cfg.traffic_stop_s = 55.0;
    workload::ScenarioRunner a(cfg);
    workload::ScenarioRunner b(cfg);
    EXPECT_EQ(experiment::result_to_json(a.run(), false),
              experiment::result_to_json(b.run(), false));
}

}  // namespace
